package bruck

import (
	"bytes"
	"fmt"
	"testing"

	"bruck/internal/buffers"
	"bruck/internal/costmodel"
	"bruck/internal/lowerbound"
)

// reduceTestBlockLen holds whole elements of every built-in type.
const reduceTestBlockLen = 16

// allKernels enumerates every built-in (op, type) kernel pair.
var allKernels = func() []struct {
	op  ReduceOp
	typ DataType
} {
	var out []struct {
		op  ReduceOp
		typ DataType
	}
	for _, op := range []ReduceOp{ReduceSum, ReduceMin, ReduceMax} {
		for _, typ := range []DataType{Int32, Int64, Float32, Float64} {
			out = append(out, struct {
				op  ReduceOp
				typ DataType
			}{op, typ})
		}
	}
	return out
}()

// fillReduceInput writes deterministic small integer-valued elements
// (in [-8, 8)) of the given type into every block. Small integers are
// exactly representable in float32/float64 and sums of up to 16 of
// them stay exact, so byte equivalence holds across combine orders —
// which is what lets one reference serve every algorithm.
func fillReduceInput(in *Buffers, typ DataType, seed int) {
	data := in.Bytes()
	elems := len(data) / typ.Size()
	for e := 0; e < elems; e++ {
		v := (seed+e*7)%16 - 8
		switch typ {
		case Int32:
			buffers.PutInt32s(data[e*4:], []int32{int32(v)})
		case Int64:
			buffers.PutInt64s(data[e*8:], []int64{int64(v)})
		case Float32:
			buffers.PutFloat32s(data[e*4:], []float32{float32(v)})
		case Float64:
			buffers.PutFloat64s(data[e*8:], []float64{float64(v)})
		}
	}
}

// refReduce returns the reference reduction of chunk j: the combination
// of every rank's contribution to j, applied in rank order.
func refReduce(in *Buffers, j int, fn CombineFunc) []byte {
	acc := append([]byte(nil), in.Block(0, j)...)
	for p := 1; p < in.Procs(); p++ {
		if len(acc) > 0 {
			fn(acc, in.Block(p, j))
		}
	}
	return acc
}

// machineSizes skips (n, k) pairs the engine rejects.
func portsOK(n, k int) bool {
	maxK := n - 1
	if maxK < 1 {
		maxK = 1
	}
	return k <= maxK
}

// TestAllReduceEquivalence is the acceptance suite: AllReduce matches a
// direct reference reduce byte-for-byte for n = 1..16, k = 1..3, every
// built-in kernel, on both transports.
func TestAllReduceEquivalence(t *testing.T) {
	for _, backend := range []Backend{BackendChan, BackendSlot} {
		for k := 1; k <= 3; k++ {
			for n := 1; n <= 16; n++ {
				if !portsOK(n, k) {
					continue
				}
				m := MustNewMachine(n, Ports(k), WithTransport(backend))
				for _, ker := range allKernels {
					in, err := NewIndexBuffers(n, reduceTestBlockLen)
					if err != nil {
						t.Fatal(err)
					}
					fillReduceInput(in, ker.typ, n*31+k*7)
					out, err := NewIndexBuffers(n, reduceTestBlockLen)
					if err != nil {
						t.Fatal(err)
					}
					rep, err := m.AllReduceFlat(in, out, WithKernel(ker.op, ker.typ))
					if err != nil {
						t.Fatalf("%v n=%d k=%d %v/%v: %v", backend, n, k, ker.op, ker.typ, err)
					}
					fn, err := buffers.Kernel(ker.op, ker.typ)
					if err != nil {
						t.Fatal(err)
					}
					for j := 0; j < n; j++ {
						want := refReduce(in, j, fn)
						for i := 0; i < n; i++ {
							if !bytes.Equal(out.Block(i, j), want) {
								t.Fatalf("%v n=%d k=%d %v/%v: out[%d][%d] = %v, want %v",
									backend, n, k, ker.op, ker.typ, i, j, out.Block(i, j), want)
							}
						}
					}
					if rep.C1 < rep.C1LowerBound {
						t.Errorf("%v n=%d k=%d: C1 = %d below bound %d", backend, n, k, rep.C1, rep.C1LowerBound)
					}
					if rep.C2 < rep.C2LowerBound {
						t.Errorf("%v n=%d k=%d: C2 = %d below bound %d", backend, n, k, rep.C2, rep.C2LowerBound)
					}
				}
			}
		}
	}
}

// TestReduceScatterAlgorithmsMatchReference runs every reduce-scatter
// schedule — ring, recursive halving where the size allows, and the
// Bruck family at its radix extremes — against the reference reduce,
// and checks the measured schedule matches the compiled prediction.
func TestReduceScatterAlgorithmsMatchReference(t *testing.T) {
	fn, err := buffers.Kernel(buffers.Sum, buffers.Int32)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []Backend{BackendChan, BackendSlot} {
		for k := 1; k <= 3; k++ {
			for n := 1; n <= 16; n++ {
				if !portsOK(n, k) {
					continue
				}
				m := MustNewMachine(n, Ports(k), WithTransport(backend))
				algs := []struct {
					name string
					opts []CollectiveOption
				}{
					{"ring", []CollectiveOption{WithReduceAlgorithm(ReduceRing)}},
					{"bruck r=2", []CollectiveOption{WithReduceAlgorithm(ReduceBruck), WithRadix(2)}},
					{"bruck r=n", []CollectiveOption{WithReduceAlgorithm(ReduceBruck), WithRadix(n)}},
				}
				if n&(n-1) == 0 && n > 1 {
					algs = append(algs, struct {
						name string
						opts []CollectiveOption
					}{"halving", []CollectiveOption{WithReduceAlgorithm(ReduceHalving)}})
				}
				in, err := NewIndexBuffers(n, reduceTestBlockLen)
				if err != nil {
					t.Fatal(err)
				}
				fillReduceInput(in, Int32, n*13+k)
				want := make([][]byte, n)
				for j := 0; j < n; j++ {
					want[j] = refReduce(in, j, fn)
				}
				for _, alg := range algs {
					if n == 1 && alg.name == "bruck r=2" {
						continue // radix 2 > n is rejected for n = 1
					}
					out, err := NewConcatBuffers(n, reduceTestBlockLen)
					if err != nil {
						t.Fatal(err)
					}
					opts := append([]CollectiveOption{WithKernel(ReduceSum, Int32)}, alg.opts...)
					rep, err := m.ReduceScatterFlat(in, out, opts...)
					if err != nil {
						t.Fatalf("%v n=%d k=%d %s: %v", backend, n, k, alg.name, err)
					}
					for i := 0; i < n; i++ {
						if !bytes.Equal(out.Block(i, 0), want[i]) {
							t.Fatalf("%v n=%d k=%d %s: chunk %d = %v, want %v",
								backend, n, k, alg.name, i, out.Block(i, 0), want[i])
						}
					}
					pl, err := m.CompileReduce(ReduceScatterKind, reduceTestBlockLen, alg.opts...)
					_ = pl
					if err == nil {
						// CompileReduce without a kernel must fail; with one it
						// must predict the measured schedule exactly.
						t.Fatalf("%v n=%d k=%d %s: CompileReduce without kernel accepted", backend, n, k, alg.name)
					}
					pl, err = m.CompileReduce(ReduceScatterKind, reduceTestBlockLen, opts...)
					if err != nil {
						t.Fatal(err)
					}
					if rep.C1 != pl.Rounds() || rep.C2 != pl.PredictedC2() {
						t.Errorf("%v n=%d k=%d %s: measured (C1, C2) = (%d, %d), compiled predicts (%d, %d)",
							backend, n, k, alg.name, rep.C1, rep.C2, pl.Rounds(), pl.PredictedC2())
					}
					if rep.C2 < lowerbound.ReduceScatterVolume(n, reduceTestBlockLen, k) {
						t.Errorf("%v n=%d k=%d %s: C2 = %d below the send-side bound", backend, n, k, alg.name, rep.C2)
					}
				}
			}
		}
	}
}

// TestAllReduceLegacyMatchesFlat pins the legacy-slice wrappers to the
// flat path, and the reduce-scatter + allgather composition to its
// parts: every output row equals the reduce-scatter result gathered
// everywhere.
func TestAllReduceLegacyMatchesFlat(t *testing.T) {
	const n, bl = 6, 8
	m := MustNewMachine(n, Ports(2))
	in := make([][][]byte, n)
	for i := range in {
		in[i] = make([][]byte, n)
		for j := range in[i] {
			in[i][j] = make([]byte, bl)
			fill := &Buffers{}
			_ = fill
			for e := 0; e < bl/4; e++ {
				buffers.PutInt32s(in[i][j][e*4:], []int32{int32((i*n+j+e)%16 - 8)})
			}
		}
	}
	chunks, rsRep, err := m.ReduceScatter(in, WithKernel(ReduceSum, Int32))
	if err != nil {
		t.Fatal(err)
	}
	full, arRep, err := m.AllReduce(in, WithKernel(ReduceSum, Int32))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !bytes.Equal(full[i][j], chunks[j]) {
				t.Fatalf("allreduce[%d][%d] = %v, reduce-scatter chunk %d = %v", i, j, full[i][j], j, chunks[j])
			}
		}
	}
	if arRep.C1 <= rsRep.C1 {
		t.Errorf("allreduce C1 = %d should exceed reduce-scatter C1 = %d (it appends the concatenation)", arRep.C1, rsRep.C1)
	}
}

// TestReduceZeroBlockLen pins the zero-length edge: a zero block size
// must neither invoke the kernel on empty slabs nor fail — empty
// messages keep the round structure (the pool's zero-length fast path)
// and every output stays empty.
func TestReduceZeroBlockLen(t *testing.T) {
	for _, alg := range []ReduceAlgorithm{ReduceRing, ReduceHalving, ReduceBruck} {
		calls := 0
		counting := func(dst, src []byte) { calls++ }
		m := MustNewMachine(4, Ports(2))
		in, err := NewIndexBuffers(4, 0)
		if err != nil {
			t.Fatal(err)
		}
		out, err := NewIndexBuffers(4, 0)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.AllReduceFlat(in, out, WithReduceAlgorithm(alg), WithCombine(counting))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if calls != 0 {
			t.Errorf("%v: kernel invoked %d times on empty slabs", alg, calls)
		}
		if rep.C2 != 0 {
			t.Errorf("%v: C2 = %d for zero-length blocks", alg, rep.C2)
		}
		if rep.C1 == 0 {
			t.Errorf("%v: round structure collapsed for zero-length blocks", alg)
		}
		// Without any kernel at all, a zero block size is still fine.
		if _, err := m.ReduceScatterFlat(in, NewBuffersOrDie(t, 4, 1, 0), WithReduceAlgorithm(alg)); err != nil {
			t.Errorf("%v: kernel-less zero-length reduce-scatter failed: %v", alg, err)
		}
	}
}

func NewBuffersOrDie(t *testing.T, procs, blocks, blockLen int) *Buffers {
	t.Helper()
	b, err := NewBuffers(procs, blocks, blockLen)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunPlansMixesReductions drives an index plan, a concat plan and
// an allreduce plan on three disjoint groups through one RunPlans pass
// and verifies all three against their defining permutations.
func TestRunPlansMixesReductions(t *testing.T) {
	const per, bl = 4, 8
	m := MustNewMachine(3 * per)
	groups := make([]*Group, 3)
	for gi := range groups {
		ids := make([]int, per)
		for i := range ids {
			ids[i] = gi*per + i
		}
		g, err := m.NewGroup(ids)
		if err != nil {
			t.Fatal(err)
		}
		groups[gi] = g
	}

	idxIn := NewBuffersOrDie(t, per, per, bl)
	idxOut := NewBuffersOrDie(t, per, per, bl)
	catIn := NewBuffersOrDie(t, per, 1, bl)
	catOut := NewBuffersOrDie(t, per, per, bl)
	redIn := NewBuffersOrDie(t, per, per, bl)
	redOut := NewBuffersOrDie(t, per, per, bl)
	for i, b := range []*Buffers{idxIn, catIn} {
		data := b.Bytes()
		for x := range data {
			data[x] = byte(x*7 + i)
		}
	}
	fillReduceInput(redIn, Int64, 3)

	idxPlan, err := m.CompileIndex(bl, OnGroup(groups[0]))
	if err != nil {
		t.Fatal(err)
	}
	catPlan, err := m.CompileConcat(bl, OnGroup(groups[1]))
	if err != nil {
		t.Fatal(err)
	}
	redPlan, err := m.CompileReduce(AllReduceKind, bl, OnGroup(groups[2]), WithKernel(ReduceMax, Int64))
	if err != nil {
		t.Fatal(err)
	}
	if err := idxPlan.Bind(idxIn, idxOut); err != nil {
		t.Fatal(err)
	}
	if err := catPlan.Bind(catIn, catOut); err != nil {
		t.Fatal(err)
	}
	if err := redPlan.Bind(redIn, redOut); err != nil {
		t.Fatal(err)
	}

	reports, err := m.RunPlans([]*Plan{idxPlan, catPlan, redPlan})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	for i := 0; i < per; i++ {
		for j := 0; j < per; j++ {
			if !bytes.Equal(idxOut.Block(i, j), idxIn.Block(j, i)) {
				t.Fatalf("index out[%d][%d] wrong", i, j)
			}
			if !bytes.Equal(catOut.Block(i, j), catIn.Block(j, 0)) {
				t.Fatalf("concat out[%d][%d] wrong", i, j)
			}
		}
	}
	fn, err := buffers.Kernel(buffers.Max, buffers.Int64)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < per; j++ {
		want := refReduce(redIn, j, fn)
		for i := 0; i < per; i++ {
			if !bytes.Equal(redOut.Block(i, j), want) {
				t.Fatalf("allreduce out[%d][%d] = %v, want %v", i, j, redOut.Block(i, j), want)
			}
		}
	}
	if reports[2].C2LowerBound != lowerbound.AllReduceVolume(per, bl, 1) {
		t.Errorf("allreduce report lower bound %d wrong", reports[2].C2LowerBound)
	}
}

// TestAutoReduceDispatch checks that the cost-model dispatcher never
// does worse than any explicit candidate, picks a log-round schedule on
// a latency-bound profile, and memoizes its verdict.
func TestAutoReduceDispatch(t *testing.T) {
	const n, bl = 16, 64
	m := MustNewMachine(n)
	kernel := WithKernel(ReduceSum, Float64)

	auto, err := m.CompileReduce(ReduceScatterKind, bl, kernel, WithAuto(costmodel.HighLatency))
	if err != nil {
		t.Fatal(err)
	}
	candidates := [][]CollectiveOption{
		{kernel, WithReduceAlgorithm(ReduceRing)},
		{kernel, WithReduceAlgorithm(ReduceHalving)},
		{kernel, WithReduceAlgorithm(ReduceBruck), WithRadix(2)},
		{kernel, WithReduceAlgorithm(ReduceBruck), WithRadix(n)},
	}
	for _, copts := range candidates {
		pl, err := m.CompileReduce(ReduceScatterKind, bl, copts...)
		if err != nil {
			t.Fatal(err)
		}
		if auto.Time(costmodel.HighLatency) > pl.Time(costmodel.HighLatency)+1e-15 {
			t.Errorf("auto picked %s (%g), worse than %s (%g)",
				auto.Algorithm(), auto.Time(costmodel.HighLatency), pl.Algorithm(), pl.Time(costmodel.HighLatency))
		}
	}
	if auto.Algorithm() == "ring" {
		t.Errorf("latency-bound profile picked the %d-round ring", n-1)
	}
	again, err := m.CompileReduce(ReduceScatterKind, bl, kernel, WithAuto(costmodel.HighLatency))
	if err != nil {
		t.Fatal(err)
	}
	if again != auto {
		t.Error("auto verdict was not memoized")
	}

	// A bandwidth-bound profile prefers a volume-optimal schedule.
	cheap, err := m.CompileReduce(ReduceScatterKind, bl, kernel, WithAuto(costmodel.LowLatency))
	if err != nil {
		t.Fatal(err)
	}
	if got := cheap.PredictedC2(); got != (n-1)*bl {
		t.Errorf("bandwidth-bound verdict %s has C2 = %d, want the volume-optimal %d", cheap.Algorithm(), got, (n-1)*bl)
	}
}

// TestReducePlanCacheIdentity pins the caching rules: built-in kernel
// configurations hit the cache, user kernels never do.
func TestReducePlanCacheIdentity(t *testing.T) {
	const n, bl = 8, 16
	m := MustNewMachine(n)
	a, err := m.CompileReduce(AllReduceKind, bl, WithKernel(ReduceSum, Int32))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.CompileReduce(AllReduceKind, bl, WithKernel(ReduceSum, Int32))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical built-in kernel configurations compiled twice")
	}
	c, err := m.CompileReduce(AllReduceKind, bl, WithKernel(ReduceMin, Int32))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different kernels shared one plan")
	}
	// Option fields the plan ignores are normalized out of the key: a
	// radix on the ring schedule, a last-round policy on reduce-scatter.
	ringA, err := m.CompileReduce(ReduceScatterKind, bl, WithKernel(ReduceSum, Int32), WithReduceAlgorithm(ReduceRing))
	if err != nil {
		t.Fatal(err)
	}
	ringB, err := m.CompileReduce(ReduceScatterKind, bl, WithKernel(ReduceSum, Int32), WithReduceAlgorithm(ReduceRing),
		WithRadix(5), WithLastRoundPolicy(LastRoundMinVolume))
	if err != nil {
		t.Fatal(err)
	}
	if ringA != ringB {
		t.Error("ignored option fields fragmented the reduce-plan cache")
	}
	user := func(dst, src []byte) {}
	d, err := m.CompileReduce(AllReduceKind, bl, WithCombine(user))
	if err != nil {
		t.Fatal(err)
	}
	e, err := m.CompileReduce(AllReduceKind, bl, WithCombine(user))
	if err != nil {
		t.Fatal(err)
	}
	if d == e {
		t.Error("user-kernel plans must not be cached")
	}
}

// TestReduceValidation exercises the compile- and execute-time error
// paths of the reduction entry points.
func TestReduceValidation(t *testing.T) {
	const n, bl = 6, 16
	m := MustNewMachine(n)
	in := NewBuffersOrDie(t, n, n, bl)
	outRS := NewBuffersOrDie(t, n, 1, bl)
	outAR := NewBuffersOrDie(t, n, n, bl)

	if _, err := m.ReduceScatterFlat(in, outRS); err == nil {
		t.Error("reduce without a kernel accepted")
	}
	if _, err := m.ReduceScatterFlat(in, outRS, WithKernel(ReduceSum, Float64), WithReduceAlgorithm(ReduceHalving)); err == nil {
		t.Error("halving on a non-power-of-two group accepted")
	}
	odd := NewBuffersOrDie(t, n, n, 10)
	oddOut := NewBuffersOrDie(t, n, 1, 10)
	if _, err := m.ReduceScatterFlat(odd, oddOut, WithKernel(ReduceSum, Float64)); err == nil {
		t.Error("block size not divisible by the element size accepted")
	}
	if _, err := m.ReduceScatterFlat(in, outAR, WithKernel(ReduceSum, Int32)); err == nil {
		t.Error("index-shaped output accepted for reduce-scatter")
	}
	if _, err := m.AllReduceFlat(in, outRS, WithKernel(ReduceSum, Int32)); err == nil {
		t.Error("concat-shaped output accepted for allreduce")
	}
	if _, err := m.ReduceScatterFlat(in, nil, WithKernel(ReduceSum, Int32)); err == nil {
		t.Error("nil output accepted")
	}
	if _, err := m.CompileReduce(ReduceScatterKind, bl, WithKernel(ReduceSum, Int32), WithReduceAlgorithm(ReduceBruck), WithRadix(n+1)); err == nil {
		t.Error("radix above n accepted")
	}
	pl, err := m.CompileReduce(ReduceScatterKind, bl, WithKernel(ReduceSum, Int32))
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Bind(in, outAR); err == nil {
		t.Error("Bind accepted an index-shaped output on a reduce-scatter plan")
	}
	if err := pl.Bind(in, outRS); err != nil {
		t.Errorf("Bind rejected the correct shapes: %v", err)
	}
}

// TestReduceOnGroup runs a reduction on a strict subgroup, with
// out-of-group processors idle.
func TestReduceOnGroup(t *testing.T) {
	const n, per, bl = 8, 4, 8
	m := MustNewMachine(n)
	g, err := m.NewGroup([]int{1, 3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	in := NewBuffersOrDie(t, per, per, bl)
	fillReduceInput(in, Float32, 11)
	out := NewBuffersOrDie(t, per, 1, bl)
	if _, err := m.ReduceScatterFlat(in, out, OnGroup(g), WithKernel(ReduceMin, Float32)); err != nil {
		t.Fatal(err)
	}
	fn, err := buffers.Kernel(buffers.Min, buffers.Float32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < per; i++ {
		if want := refReduce(in, i, fn); !bytes.Equal(out.Block(i, 0), want) {
			t.Fatalf("group chunk %d = %v, want %v", i, out.Block(i, 0), want)
		}
	}
}

// TestReduceReportsAgainstBounds sweeps the compiled predictions
// against the reduction lower bounds.
func TestReduceReportsAgainstBounds(t *testing.T) {
	for k := 1; k <= 3; k++ {
		for n := 2; n <= 16; n++ {
			if !portsOK(n, k) {
				continue
			}
			m := MustNewMachine(n, Ports(k))
			for _, kind := range []ReduceKind{ReduceScatterKind, AllReduceKind} {
				pl, err := m.CompileReduce(kind, reduceTestBlockLen, WithKernel(ReduceSum, Int32))
				if err != nil {
					t.Fatal(err)
				}
				var c1lb, c2lb int
				if kind == ReduceScatterKind {
					c1lb = lowerbound.ReduceScatterRounds(n, k)
					c2lb = lowerbound.ReduceScatterVolume(n, reduceTestBlockLen, k)
				} else {
					c1lb = lowerbound.AllReduceRounds(n, k)
					c2lb = lowerbound.AllReduceVolume(n, reduceTestBlockLen, k)
				}
				if pl.Rounds() < c1lb {
					t.Errorf("%v n=%d k=%d: C1 = %d below bound %d", kind, n, k, pl.Rounds(), c1lb)
				}
				if pl.PredictedC2() < c2lb {
					t.Errorf("%v n=%d k=%d: C2 = %d below bound %d", kind, n, k, pl.PredictedC2(), c2lb)
				}
				if pl.C2LowerBound() != c2lb {
					t.Errorf("%v n=%d k=%d: plan carries bound %d, want %d", kind, n, k, pl.C2LowerBound(), c2lb)
				}
			}
		}
	}
}

// TestReduceAlgorithmNames pins the reporting surface.
func TestReduceAlgorithmNames(t *testing.T) {
	m := MustNewMachine(8)
	for _, tc := range []struct {
		kind ReduceKind
		alg  ReduceAlgorithm
		op   string
		name string
	}{
		{ReduceScatterKind, ReduceRing, "reduce-scatter", "ring"},
		{ReduceScatterKind, ReduceHalving, "reduce-scatter", "halving"},
		{AllReduceKind, ReduceBruck, "allreduce", "bruck"},
	} {
		pl, err := m.CompileReduce(tc.kind, 8, WithKernel(ReduceSum, Int32), WithReduceAlgorithm(tc.alg))
		if err != nil {
			t.Fatal(err)
		}
		if pl.Op() != tc.op || pl.Algorithm() != tc.name {
			t.Errorf("plan reports (%s, %s), want (%s, %s)", pl.Op(), pl.Algorithm(), tc.op, tc.name)
		}
	}
	if s := fmt.Sprint(ReduceScatterKind, AllReduceKind); s != "reduce-scatter allreduce" {
		t.Errorf("kind strings: %q", s)
	}
}
