package bruck

import (
	"bytes"
	"testing"

	"bruck/internal/lowerbound"
)

func indexInput(n, b int) [][][]byte {
	in := make([][][]byte, n)
	for i := range in {
		in[i] = make([][]byte, n)
		for j := range in[i] {
			blk := make([]byte, b)
			for x := range blk {
				blk[x] = byte(i*59 + j*17 + x)
			}
			in[i][j] = blk
		}
	}
	return in
}

func TestMachineIndexDefault(t *testing.T) {
	m := MustNewMachine(8)
	in := indexInput(8, 16)
	out, rep, err := m.Index(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if !bytes.Equal(out[i][j], in[j][i]) {
				t.Fatalf("out[%d][%d] != in[%d][%d]", i, j, j, i)
			}
		}
	}
	if rep.C1 != 3 { // default radix k+1 = 2 on 8 processors
		t.Errorf("C1 = %d, want 3", rep.C1)
	}
}

func TestMachineIndexRadixTradeoff(t *testing.T) {
	m := MustNewMachine(16)
	in := indexInput(16, 8)
	_, fast, err := m.Index(in, WithRadix(2))
	if err != nil {
		t.Fatal(err)
	}
	_, lean, err := m.Index(in, WithRadix(16))
	if err != nil {
		t.Fatal(err)
	}
	if !(fast.C1 < lean.C1) {
		t.Errorf("r=2 C1 = %d should beat r=n C1 = %d", fast.C1, lean.C1)
	}
	if !(lean.C2 < fast.C2) {
		t.Errorf("r=n C2 = %d should beat r=2 C2 = %d", lean.C2, fast.C2)
	}
	// Report.Time orders consistently with the profile.
	if fast.Time(SP1) <= 0 || lean.Time(SP1) <= 0 {
		t.Error("model times must be positive")
	}
}

func TestMachineConcat(t *testing.T) {
	m := MustNewMachine(9, Ports(2))
	in := make([][]byte, 9)
	for i := range in {
		in[i] = []byte{byte(i), byte(i * i)}
	}
	out, rep, err := m.Concat(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		for j := range out[i] {
			if !bytes.Equal(out[i][j], in[j]) {
				t.Fatalf("out[%d][%d] wrong", i, j)
			}
		}
	}
	if want := lowerbound.ConcatRounds(9, 2); rep.C1 != want {
		t.Errorf("C1 = %d, want optimal %d", rep.C1, want)
	}
	if want := lowerbound.ConcatVolume(9, 2, 2); rep.C2 != want {
		t.Errorf("C2 = %d, want optimal %d", rep.C2, want)
	}
}

func TestMachineSubgroup(t *testing.T) {
	m := MustNewMachine(10)
	g, err := m.NewGroup([]int{9, 0, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	in := indexInput(4, 4)
	out, _, err := m.Index(in, OnGroup(g), WithRadix(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !bytes.Equal(out[i][j], in[j][i]) {
				t.Fatalf("subgroup out[%d][%d] wrong", i, j)
			}
		}
	}
}

func TestMachinePrimitives(t *testing.T) {
	m := MustNewMachine(7, Ports(2))
	data := []byte("hello collective world")
	got, rep, err := m.Broadcast(3, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i], data) {
			t.Fatalf("member %d got %q", i, got[i])
		}
	}
	if want := lowerbound.ConcatRounds(7, 2); rep.C1 != want {
		t.Errorf("broadcast C1 = %d, want %d", rep.C1, want)
	}

	blocks := make([][]byte, 7)
	for i := range blocks {
		blocks[i] = []byte{byte(i), byte(100 + i)}
	}
	gathered, _, err := m.Gather(0, blocks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gathered {
		if !bytes.Equal(gathered[i], blocks[i]) {
			t.Fatalf("gathered[%d] wrong", i)
		}
	}
	scattered, _, err := m.Scatter(2, blocks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scattered {
		if !bytes.Equal(scattered[i], blocks[i]) {
			t.Fatalf("scattered[%d] wrong", i)
		}
	}
}

func TestMachineConcatBaselines(t *testing.T) {
	m := MustNewMachine(8)
	in := make([][]byte, 8)
	for i := range in {
		in[i] = []byte{byte(i)}
	}
	for _, alg := range []struct {
		name string
		opt  CollectiveOption
	}{
		{"folklore", WithConcatAlgorithm(ConcatFolklore)},
		{"ring", WithConcatAlgorithm(ConcatRing)},
		{"recdbl", WithConcatAlgorithm(ConcatRecursiveDoubling)},
	} {
		out, _, err := m.Concat(in, alg.opt)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		for i := range out {
			for j := range out[i] {
				if !bytes.Equal(out[i][j], in[j]) {
					t.Fatalf("%s: out[%d][%d] wrong", alg.name, i, j)
				}
			}
		}
	}
}

func TestPredictMatchesReport(t *testing.T) {
	const n, b, r, k = 16, 8, 4, 2
	m := MustNewMachine(n, Ports(k))
	_, rep, err := m.Index(indexInput(n, b), WithRadix(r))
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := PredictIndex(n, b, r, k)
	if rep.C1 != c1 || rep.C2 != c2 {
		t.Errorf("report (%d, %d), prediction (%d, %d)", rep.C1, rep.C2, c1, c2)
	}
	cin := make([][]byte, n)
	for i := range cin {
		cin[i] = make([]byte, b)
	}
	_, crep, err := m.Concat(cin)
	if err != nil {
		t.Fatal(err)
	}
	cc1, cc2, err := PredictConcat(n, b, k)
	if err != nil {
		t.Fatal(err)
	}
	if crep.C1 != cc1 || crep.C2 != cc2 {
		t.Errorf("concat report (%d, %d), prediction (%d, %d)", crep.C1, crep.C2, cc1, cc2)
	}
}

func TestOptimalRadixEndpoints(t *testing.T) {
	if r := OptimalRadix(SP1, 64, 1, 1, true); r != 2 {
		t.Errorf("tiny blocks: optimal radix %d, want 2", r)
	}
	rBig := OptimalRadix(SP1, 64, 8192, 1, true)
	if rBig < 32 {
		t.Errorf("huge blocks: optimal radix %d, want near n", rBig)
	}
}

func TestNewMachineErrors(t *testing.T) {
	if _, err := NewMachine(0); err == nil {
		t.Error("NewMachine(0) accepted")
	}
	if _, err := NewMachine(4, Ports(4)); err == nil {
		t.Error("k = n accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewMachine(0) did not panic")
		}
	}()
	MustNewMachine(0)
}

func TestMachineIndexMixedRadices(t *testing.T) {
	const n, b = 30, 64
	m := MustNewMachine(n)
	in := indexInput(n, b)
	radices := OptimalRadixSchedule(SP1, n, b, 1)
	out, rep, err := m.Index(in, WithRadices(radices))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !bytes.Equal(out[i][j], in[j][i]) {
				t.Fatalf("mixed out[%d][%d] wrong", i, j)
			}
		}
	}
	c1, c2 := PredictIndexMixed(n, b, radices, 1)
	if rep.C1 != c1 || rep.C2 != c2 {
		t.Errorf("report (%d, %d), prediction (%d, %d)", rep.C1, rep.C2, c1, c2)
	}
	// Never worse than the best uniform radix under the model.
	rBest := OptimalRadix(SP1, n, b, 1, false)
	uc1, uc2 := PredictIndex(n, b, rBest, 1)
	if rep.Time(SP1) > SP1.Time(uc1, uc2)+1e-12 {
		t.Errorf("mixed schedule (%v) worse than uniform r=%d", radices, rBest)
	}
}

func TestCriticalPathTime(t *testing.T) {
	const n, b = 16, 32
	// Symmetric schedule (Bruck index): critical path equals the
	// linear-model report time.
	m := MustNewMachine(n, RecordEvents())
	_, rep, err := m.Index(indexInput(n, b), WithRadix(2))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := m.CriticalPathTime(SP1)
	if err != nil {
		t.Fatal(err)
	}
	if diff := cp - rep.Time(SP1); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("index critical path %g != linear %g", cp, rep.Time(SP1))
	}

	// Skewed schedule: the folklore gather on a NON-power-of-two size
	// has truncated subtrees whose senders run ahead of the root, so
	// the critical path is strictly cheaper than the round-max linear
	// estimate. (For powers of two the folklore tree is perfectly
	// balanced and the two estimates agree.)
	m11 := MustNewMachine(11, RecordEvents())
	in := make([][]byte, 11)
	for i := range in {
		in[i] = make([]byte, b)
	}
	_, crep, err := m11.Concat(in, WithConcatAlgorithm(ConcatFolklore))
	if err != nil {
		t.Fatal(err)
	}
	cp, err = m11.CriticalPathTime(SP1)
	if err != nil {
		t.Fatal(err)
	}
	if cp >= crep.Time(SP1) {
		t.Errorf("folklore critical path %g should be below linear %g", cp, crep.Time(SP1))
	}

	// Error paths.
	m2 := MustNewMachine(4)
	if _, err := m2.CriticalPathTime(SP1); err == nil {
		t.Error("CriticalPathTime before any operation accepted")
	}
	if _, _, err := m2.Concat(make([][]byte, 4)); err != nil {
		t.Errorf("zero-length blocks should be legal: %v", err)
	}
	if _, err := m2.CriticalPathTime(SP1); err == nil {
		t.Error("CriticalPathTime without RecordEvents accepted")
	}
}

func TestWithoutPackingAblation(t *testing.T) {
	m := MustNewMachine(8)
	in := indexInput(8, 4)
	_, packed, err := m.Index(in, WithRadix(2))
	if err != nil {
		t.Fatal(err)
	}
	out, unpacked, err := m.Index(in, WithRadix(2), WithoutPacking())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if !bytes.Equal(out[i][j], in[j][i]) {
				t.Fatalf("unpacked out[%d][%d] wrong", i, j)
			}
		}
	}
	if unpacked.C1 <= packed.C1 {
		t.Errorf("packing ablation should cost rounds: %d vs %d", unpacked.C1, packed.C1)
	}
}
