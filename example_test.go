package bruck_test

import (
	"fmt"

	"bruck"
)

// The index operation exchanges block B[i,j] with B[j,i]: after the
// call, processor i holds the j-th block of every other processor.
func ExampleMachine_Index() {
	const n = 4
	m := bruck.MustNewMachine(n)
	in := make([][][]byte, n)
	for i := range in {
		in[i] = make([][]byte, n)
		for j := range in[i] {
			in[i][j] = []byte(fmt.Sprintf("B[%d,%d]", i, j))
		}
	}
	out, rep, err := m.Index(in, bruck.WithRadix(2))
	if err != nil {
		panic(err)
	}
	fmt.Println("processor 2 holds:", string(out[2][0]), string(out[2][1]), string(out[2][2]), string(out[2][3]))
	fmt.Println("rounds:", rep.C1)
	// Output:
	// processor 2 holds: B[0,2] B[1,2] B[2,2] B[3,2]
	// rounds: 2
}

// The concatenation operation makes every processor hold the
// concatenation B[0] B[1] ... B[n-1].
func ExampleMachine_Concat() {
	const n = 5
	m := bruck.MustNewMachine(n)
	in := make([][]byte, n)
	for i := range in {
		in[i] = []byte{byte('a' + i)}
	}
	out, rep, err := m.Concat(in)
	if err != nil {
		panic(err)
	}
	var held []byte
	for _, blk := range out[3] {
		held = append(held, blk...)
	}
	fmt.Printf("processor 3 holds %q after %d rounds\n", held, rep.C1)
	// Output:
	// processor 3 holds "abcde" after 3 rounds
}

// OptimalRadix picks the radix the linear model prefers: small radices
// for latency-bound (small) messages, large radices for
// bandwidth-bound (large) messages.
func ExampleOptimalRadix() {
	small := bruck.OptimalRadix(bruck.SP1, 64, 4, 1, true)
	large := bruck.OptimalRadix(bruck.SP1, 64, 4096, 1, true)
	fmt.Println("4-byte blocks:", small)
	fmt.Println("4096-byte blocks:", large)
	// Output:
	// 4-byte blocks: 2
	// 4096-byte blocks: 64
}

// PredictIndex gives the closed-form complexity of the radix-r index
// algorithm: the r = 2 and r = n special cases of Section 3.3.
func ExamplePredictIndex() {
	c1, c2 := bruck.PredictIndex(64, 1, 2, 1)
	fmt.Printf("r=2:  C1=%d rounds, C2=%d blocks\n", c1, c2)
	c1, c2 = bruck.PredictIndex(64, 1, 64, 1)
	fmt.Printf("r=64: C1=%d rounds, C2=%d blocks\n", c1, c2)
	// Output:
	// r=2:  C1=6 rounds, C2=192 blocks
	// r=64: C1=63 rounds, C2=63 blocks
}

// A mixed-radix schedule can beat every uniform radix at intermediate
// message sizes; OptimalRadixSchedule finds the model optimum by
// dynamic programming.
func ExampleOptimalRadixSchedule() {
	radices := bruck.OptimalRadixSchedule(bruck.SP1, 64, 4, 1)
	c1, c2 := bruck.PredictIndexMixed(64, 4, radices, 1)
	fmt.Println("vector:", radices)
	fmt.Println("C1:", c1, "C2:", c2)
	// Output:
	// vector: [2 2 2 2 2 2]
	// C1: 6 C2: 768
}
