// Command indexbench regenerates the SP-1 implementation study of
// Section 3.5: the measured-time figures of the index algorithm.
//
//	indexbench -fig 4        # time vs message size, power-of-two radices
//	indexbench -fig 5        # r=2 vs r=n vs tuned radix, with crossover
//	indexbench -fig 6        # time vs radix for several message sizes
//	indexbench -tune         # optimal radix per message size
//	indexbench -allocs       # legacy vs flat-buffer allocations per op
//	indexbench -allocs -transport slot   # ... on the slot transport
//
// Schedules are measured on the simulator (per-round message sizes of
// the real algorithm); times are evaluated under the linear model
// T = C1*beta + C2*tau with the SP-1 parameters (beta ~ 29us,
// tau ~ 0.118us/byte). Use -csv for machine-readable output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bruck/internal/collective"
	"bruck/internal/costmodel"
	"bruck/internal/mpsim"
	"bruck/internal/sweep"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (4, 5, 6)")
	tune := flag.Bool("tune", false, "print the optimal radix per message size")
	allocs := flag.Bool("allocs", false, "compare legacy vs flat-buffer allocations per operation")
	n := flag.Int("n", 64, "number of processors")
	k := flag.Int("k", 1, "ports per processor (figures use the one-port model)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	transport := flag.String("transport", "chan", "simulator transport backend: chan or slot")
	flag.Parse()

	backend, err := mpsim.ParseBackend(*transport)
	if err != nil {
		fmt.Fprintln(os.Stderr, "indexbench:", err)
		os.Exit(2)
	}
	h := sweep.NewHarness(costmodel.SP1)
	h.Backend = backend
	switch {
	case *fig == 4:
		err = runFig4(os.Stdout, h, *n, *csv)
	case *fig == 5:
		err = runFig5(os.Stdout, h, *n, *csv)
	case *fig == 6:
		err = runFig6(os.Stdout, h, *n, *csv)
	case *tune:
		err = runTune(os.Stdout, *n, *k)
	case *allocs:
		err = runAllocs(os.Stdout, backend, *n, *k)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "indexbench:", err)
		os.Exit(1)
	}
}

func runFig4(w io.Writer, h *sweep.Harness, n int, csv bool) error {
	sizes := []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	series, err := h.Fig4(n, sweep.PowersOfTwoUpTo(n), sizes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 4: index time vs message size, n = %d, k = 1, SP-1 linear model\n\n", n)
	emit(w, series, "bytes", csv)
	fmt.Fprintf(w, "\nbest radix per size: %v\n", sweep.BestRadixPerSize(series))
	return nil
}

func runFig5(w io.Writer, h *sweep.Harness, n int, csv bool) error {
	sizes := make([]int, 0, 1024)
	for b := 1; b <= 1024; b++ {
		sizes = append(sizes, b)
	}
	series, err := h.Fig5(n, sizes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 5: r=2 vs r=n=%d vs tuned power-of-two radix, SP-1 linear model\n\n", n)
	if csv {
		fmt.Fprint(w, sweep.CSV(series, "bytes"))
	} else {
		// Print a decimated view plus the crossover.
		var view []sweep.Series
		for _, s := range series {
			dec := sweep.Series{Name: s.Name}
			for i := 0; i < len(s.Points); i += 64 {
				dec.Points = append(dec.Points, s.Points[i])
			}
			view = append(view, dec)
		}
		fmt.Fprint(w, sweep.RenderSeries(view))
	}
	cross, err := sweep.Crossover(series[0], series[1])
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nbreak-even point of r=2 vs r=n: %d bytes (paper reports 100-200 bytes)\n", cross)
	return nil
}

func runFig6(w io.Writer, h *sweep.Harness, n int, csv bool) error {
	radices := make([]int, 0, n-1)
	for r := 2; r <= n; r++ {
		radices = append(radices, r)
	}
	series, err := h.Fig6(n, []int{32, 64, 128}, radices)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 6: index time vs radix for 32, 64, 128-byte messages, n = %d, SP-1 linear model\n\n", n)
	if csv {
		fmt.Fprint(w, sweep.CSV(series, "radix"))
	} else {
		fmt.Fprint(w, sweep.RenderSeriesByR(series))
	}
	return nil
}

func runTune(w io.Writer, n, k int) error {
	fmt.Fprintf(w, "optimal radix per message size, n = %d, k = %d, SP-1 linear model\n\n", n, k)
	fmt.Fprintf(w, "%10s %12s %12s %16s %10s %12s\n", "bytes", "r (any)", "r (pow2)", "mixed vector", "C1", "C2")
	for b := 1; b <= 8192; b *= 2 {
		rAll := collective.OptimalRadix(costmodel.SP1, n, b, k, false)
		rP2 := collective.OptimalRadix(costmodel.SP1, n, b, k, true)
		mixed := collective.OptimalRadixSchedule(costmodel.SP1, n, b, k)
		c1, c2 := collective.IndexMixedCost(n, b, mixed, k)
		fmt.Fprintf(w, "%10d %12d %12d %16v %10d %12d\n", b, rAll, rP2, mixed, c1, c2)
	}
	return nil
}

func runAllocs(w io.Writer, backend mpsim.Backend, n, k int) error {
	fmt.Fprintf(w, "index allocations per operation, legacy (block matrix) vs flat (zero-copy) vs compiled plan, n = %d, k = %d, transport = %s\n\n", n, k, backend)
	fmt.Fprintf(w, "%6s %8s %14s %14s %14s %12s\n", "r", "bytes", "legacy", "flat", "plan", "reduction")
	for _, r := range []int{2, 8, n} {
		for _, b := range []int{16, 128, 1024} {
			legacy, flat, planned, err := sweep.IndexAllocs(backend, n, b, r, k, 10)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%6d %8d %14.0f %14.0f %14.0f %11.0f%%\n", r, b, legacy, flat, planned, 100*(1-planned/legacy))
		}
	}
	return nil
}

func emit(w io.Writer, series []sweep.Series, xAxis string, csv bool) {
	if csv {
		fmt.Fprint(w, sweep.CSV(series, xAxis))
	} else {
		fmt.Fprint(w, sweep.RenderSeries(series))
	}
}
