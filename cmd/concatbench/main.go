// Command concatbench exercises the concatenation results of
// Sections 2 and 4: achieved-versus-lower-bound tables, the
// special-range policy trade-offs, and a baseline comparison.
//
//	concatbench -bounds            # achieved vs Section 2 lower bounds
//	concatbench -optimality        # Theorem 4.3 across the special range
//	concatbench -baselines         # circulant vs folklore/ring/recdbl
//	concatbench -allocs            # legacy vs flat-buffer allocations
//	concatbench -allocs -transport slot   # ... on the slot transport
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bruck/internal/collective"
	"bruck/internal/intmath"
	"bruck/internal/lowerbound"
	"bruck/internal/mpsim"
	"bruck/internal/partition"
	"bruck/internal/sweep"
)

func main() {
	bounds := flag.Bool("bounds", false, "print achieved C1/C2 vs lower bounds for both operations")
	optimality := flag.Bool("optimality", false, "sweep the special range and show the last-round policies")
	baselines := flag.Bool("baselines", false, "compare the circulant algorithm with the baselines")
	allocs := flag.Bool("allocs", false, "compare legacy vs flat-buffer allocations per operation")
	b := flag.Int("b", 4, "block size in bytes")
	transport := flag.String("transport", "chan", "simulator transport backend: chan or slot")
	flag.Parse()

	backend, err := mpsim.ParseBackend(*transport)
	if err != nil {
		fmt.Fprintln(os.Stderr, "concatbench:", err)
		os.Exit(2)
	}
	switch {
	case *bounds:
		err = runBounds(os.Stdout, backend, *b)
	case *optimality:
		err = runOptimality(os.Stdout, *b)
	case *baselines:
		err = runBaselines(os.Stdout, backend, *b)
	case *allocs:
		err = runAllocs(os.Stdout, backend, *b)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "concatbench:", err)
		os.Exit(1)
	}
}

func runBounds(w io.Writer, backend mpsim.Backend, b int) error {
	ns := []int{4, 5, 8, 9, 16, 17, 27, 32, 64, 100}
	ks := []int{1, 2, 3, 4}
	rows, err := sweep.ConcatBoundsTable(backend, ns, ks, b)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "concatenation: achieved vs lower bounds (b = %d)\n\n%s\n", b, sweep.RenderBounds(rows))
	irows, err := sweep.IndexBoundsTable(backend, []int{8, 9, 16, 27, 64}, []int{1, 2, 3}, b)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "index: achieved vs lower bounds (b = %d)\n\n%s", b, sweep.RenderBounds(irows))
	return nil
}

func runOptimality(w io.Writer, b int) error {
	fmt.Fprintf(w, "special range sweep (b >= 3, k >= 3, (k+1)^d - k < n < (k+1)^d), b = %d\n\n", b)
	fmt.Fprintf(w, "%5s %3s %13s | %19s | %19s\n", "n", "k", "optimal exists",
		"min-rounds C1/C2", "min-volume C1/C2")
	for k := 3; k <= 4; k++ {
		for n := k + 2; n <= 130; n++ {
			if !partition.InSpecialRange(n, b, k) {
				continue
			}
			d := intmath.CeilLog(k+1, n)
			n1 := intmath.Pow(k+1, d-1)
			exists := partition.OptimalExists(b, n-n1, n1, k)
			c1r, c2r, err := collective.ConcatCost(n, b, k, partition.MinRounds)
			if err != nil {
				return err
			}
			c1v, c2v, err := collective.ConcatCost(n, b, k, partition.MinVolume)
			if err != nil {
				return err
			}
			c1LB := lowerbound.ConcatRounds(n, k)
			c2LB := lowerbound.ConcatVolume(n, b, k)
			fmt.Fprintf(w, "%5d %3d %13v | %6d/%d (LB %d/%d) | %6d/%d (LB %d/%d)\n",
				n, k, exists, c1r, c2r, c1LB, c2LB, c1v, c2v, c1LB, c2LB)
		}
	}
	return nil
}

func runBaselines(w io.Writer, backend mpsim.Backend, b int) error {
	fmt.Fprintf(w, "concatenation algorithms, one port, b = %d, transport = %s\n\n", b, backend)
	fmt.Fprintf(w, "%5s %-20s %8s %10s %12s %12s\n", "n", "algorithm", "C1", "C2", "C1 bound", "C2 bound")
	for _, n := range []int{8, 16, 32, 64} {
		for _, alg := range []collective.ConcatAlgorithm{
			collective.ConcatCirculant, collective.ConcatFolklore,
			collective.ConcatRing, collective.ConcatRecursiveDoubling,
		} {
			e := mpsim.MustNew(n, mpsim.WithTransport(backend))
			in := make([][]byte, n)
			for i := range in {
				in[i] = make([]byte, b)
			}
			_, res, err := collective.Concat(e, mpsim.WorldGroup(n), in, collective.ConcatOptions{Algorithm: alg})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%5d %-20s %8d %10d %12d %12d\n", n, alg, res.C1, res.C2,
				lowerbound.ConcatRounds(n, 1), lowerbound.ConcatVolume(n, b, 1))
		}
	}
	return nil
}

func runAllocs(w io.Writer, backend mpsim.Backend, b int) error {
	fmt.Fprintf(w, "concat allocations per operation, legacy (block matrix) vs flat (zero-copy) vs compiled plan, b = %d, transport = %s\n\n", b, backend)
	fmt.Fprintf(w, "%5s %3s %14s %14s %14s %12s\n", "n", "k", "legacy", "flat", "plan", "reduction")
	for _, tc := range []struct{ n, k int }{{16, 1}, {32, 1}, {64, 1}, {64, 3}} {
		legacy, flat, planned, err := sweep.ConcatAllocs(backend, tc.n, b, tc.k, 10)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%5d %3d %14.0f %14.0f %14.0f %11.0f%%\n", tc.n, tc.k, legacy, flat, planned, 100*(1-planned/legacy))
	}
	return nil
}
