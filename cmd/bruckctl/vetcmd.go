// The vet subcommand statically verifies the golden corpus without
// executing anything: it recompiles every corpus case and runs
// Plan.Check over the compiled tables, runs the schedule verifier
// (internal/analysis/schedcheck) over the committed artifact, and
// cross-checks the two — the artifact's header must agree with the
// plan it claims to describe.
//
//	bruckctl vet [-dir d] [-case substr] [-perturb] [-report-json]
//
// Where `bruckctl trace verify` proves a live run still matches the
// committed schedule, vet proves the schedule itself is well-formed:
// k-port limits, block accounting, complexity recomputation, and the
// delivery simulation that shows the tables realize the collective.
// -perturb is the negative self-test: it structurally perturbs each
// artifact after parsing and succeeds only if every case is then
// rejected.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"bruck/internal/analysis/schedcheck"
	"bruck/internal/cli"
	"bruck/internal/collective"
	"bruck/internal/golden"
	"bruck/internal/trace"
)

func newVetCmd() *command {
	fs := newFlagSet("vet")
	dir := fs.String("dir", defaultTraceDir(), "golden artifact directory")
	caseFilter := fs.String(cli.FlagCase, "", "only cases whose name contains this substring")
	perturb := fs.Bool("perturb", false, "perturb each artifact and require verification to fail")
	reportJSON := fs.Bool(cli.FlagReportJSON, false, "emit the JSON report instead of text")
	c := &command{name: "vet", summary: "statically verify compiled plans and golden artifacts", fs: fs}
	c.exec = func(args []string, w io.Writer) error {
		if err := fs.Parse(args); err != nil {
			return err
		}
		return vetRun(*dir, *caseFilter, *perturb, *reportJSON, w)
	}
	return c
}

func vetRun(dir, caseFilter string, perturb, reportJSON bool, out io.Writer) error {
	rp := newReporter(out, reportJSON)
	w := rp.text()
	report := &cli.Table{Name: "vet", Columns: []string{"case", "status", "detail"}}

	cases := make([]golden.Case, 0, 16)
	for _, c := range golden.Corpus() {
		if strings.Contains(c.Name, caseFilter) {
			cases = append(cases, c)
		}
	}
	if len(cases) == 0 {
		return fmt.Errorf("no cases match -case %q", caseFilter)
	}

	failed := 0
	for _, c := range cases {
		violations, err := vetCase(dir, c, perturb)
		if err != nil {
			return err
		}
		switch {
		case perturb && len(violations) == 0:
			failed++
			fmt.Fprintf(w, "FAIL %s: perturbed artifact passed static verification\n", c.Name)
			report.AddRow(c.Name, "FAIL", "perturbed artifact passed static verification")
		case perturb:
			fmt.Fprintf(w, "ok   %s: perturbation detected (%d violations)\n", c.Name, len(violations))
			report.AddRow(c.Name, "ok", fmt.Sprintf("perturbation detected (%d violations)", len(violations)))
		case len(violations) != 0:
			failed++
			fmt.Fprintf(w, "FAIL %s:\n", c.Name)
			for _, v := range violations {
				fmt.Fprintf(w, "  %s\n", v)
			}
			report.AddRow(c.Name, "FAIL", strings.Join(violations, "; "))
		default:
			fmt.Fprintf(w, "ok   %s\n", c.Name)
			report.AddRow(c.Name, "ok", "")
		}
	}
	rp.add(report)
	if err := rp.flush(); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d cases failed", failed, len(cases))
	}
	return nil
}

// vetCase statically verifies one corpus case: plan tables, committed
// artifact, and the agreement between them.
func vetCase(dir string, c golden.Case, perturb bool) ([]string, error) {
	pl, err := golden.Compile(c)
	if err != nil {
		return nil, err
	}
	var violations []string
	if !perturb {
		for _, v := range pl.Check() {
			violations = append(violations, "plan: "+v)
		}
	}

	data, err := os.ReadFile(golden.Path(dir, c))
	if err != nil {
		return nil, fmt.Errorf("vet: no artifact for case %s (run `bruckctl trace record`): %w", c.Name, err)
	}
	s, err := trace.ParseSchedule(data)
	if err != nil {
		return nil, fmt.Errorf("vet: case %s: %w", c.Name, err)
	}
	if perturb {
		vetPerturb(s)
	}
	for _, v := range schedcheck.Verify(s) {
		violations = append(violations, "artifact: "+v)
	}
	violations = append(violations, vetCrossCheck(pl, s, c)...)
	return violations, nil
}

// vetPerturb injects the structural drift the verifier must catch. A
// hierarchical artifact is perturbed across the level dimension — an
// inter-group transfer displaced into an intra phase, which the
// link-class discipline must reject. For flat artifacts the shared
// golden.Perturb bump can coincidentally keep C2 consistent (when the
// bumped send was the unique round maximum), so vet drops a send
// instead — breaking the pattern count on populated schedules — and
// falls back to the meta bump for message-free ones.
func vetPerturb(s *trace.Schedule) {
	if golden.PerturbPhase(s) {
		return
	}
	for i := range s.Rounds {
		if len(s.Rounds[i].Sends) > 0 {
			s.Rounds[i].Sends = s.Rounds[i].Sends[:len(s.Rounds[i].Sends)-1]
			return
		}
	}
	s.C1++
}

// vetCrossCheck verifies the artifact header describes the compiled
// plan: same operation, shape and predicted complexity.
func vetCrossCheck(pl *collective.Plan, s *trace.Schedule, c golden.Case) []string {
	var v []string
	if s.Op != pl.Op() {
		v = append(v, fmt.Sprintf("cross: artifact op %q, plan compiles %q", s.Op, pl.Op()))
	}
	if s.N != c.N || s.K != c.K {
		v = append(v, fmt.Sprintf("cross: artifact shape n=%d k=%d, case is n=%d k=%d", s.N, s.K, c.N, c.K))
	}
	if s.BlockLen != pl.BlockLen() {
		v = append(v, fmt.Sprintf("cross: artifact blockLen %d, plan compiled for %d", s.BlockLen, pl.BlockLen()))
	}
	if s.C1 != pl.Rounds() {
		v = append(v, fmt.Sprintf("cross: artifact c1=%d, plan predicts %d rounds", s.C1, pl.Rounds()))
	}
	if s.C2 != pl.PredictedC2() {
		v = append(v, fmt.Sprintf("cross: artifact c2=%d, plan predicts %d", s.C2, pl.PredictedC2()))
	}
	return v
}
