// The figures subcommand renders the structural figures and tables of
// the paper as text (the old cmd/figures): the processor-memory
// configurations of Figures 1, 2 and 3 (index operation), the spanning
// trees of Figures 7 and 8 (concatenation), the concatenation trace of
// Figure 9, and the table-partitioning example of Table 1.
//
//	bruckctl figures -fig 1|2|3|7|8|9 [-n N] [-radix R]
//	bruckctl figures -fig 9 -transport slot   # verify the trace on the slot backend
//	bruckctl figures -table 1
//	bruckctl figures -all
//
// The -transport flag matches the other subcommands: figures 2, 3 and
// 9 depict algorithm executions, and their label traces are
// cross-checked against a byte-level run of the real schedule on the
// selected simulator backend before rendering.
package main

import (
	"fmt"
	"io"

	"bruck/internal/buffers"
	"bruck/internal/circulant"
	"bruck/internal/cli"
	"bruck/internal/collective"
	"bruck/internal/intmath"
	"bruck/internal/mpsim"
	"bruck/internal/partition"
	"bruck/internal/trace"
)

type figuresParams struct {
	fig        int
	table      int
	all        bool
	n          int
	r          int
	transport  string
	reportJSON bool
}

func newFiguresCmd() *command {
	fs := newFlagSet("figures")
	var p figuresParams
	fs.IntVar(&p.fig, cli.FlagFig, 0, "figure number to render (1, 2, 3, 7, 8, 9)")
	fs.IntVar(&p.table, "table", 0, "table number to render (1)")
	fs.BoolVar(&p.all, "all", false, "render every figure and table")
	fs.IntVar(&p.n, cli.FlagN, 5, "number of processors for figures 1-3 and 9")
	fs.IntVar(&p.r, cli.FlagRadix, 2, "radix for figure 3")
	fs.IntVar(&p.r, cli.FlagRadixAlias, 2, "alias for -radix")
	fs.StringVar(&p.transport, cli.FlagTransport, "chan", "simulator transport backend for trace verification: chan or slot")
	fs.BoolVar(&p.reportJSON, cli.FlagReportJSON, false, "emit the JSON report instead of text")
	c := &command{name: "figures", summary: "structural figures 1-3/7-9 and Table 1, byte-verified", fs: fs}
	c.exec = func(args []string, w io.Writer) error {
		if err := fs.Parse(args); err != nil {
			return err
		}
		return runFiguresStudy(w, p)
	}
	return c
}

func runFiguresStudy(w io.Writer, p figuresParams) error {
	backend, err := mpsim.ParseBackend(p.transport)
	if err != nil {
		return err
	}
	rp := newReporter(w, p.reportJSON)
	figKV := func(fig int) {
		kv := cli.KV(fmt.Sprintf("figure-%d", fig))
		kv.Add("n", p.n)
		if fig == 3 {
			kv.Add("radix", p.r)
		}
		if fig == 2 || fig == 3 || fig == 9 {
			kv.Add("verified_transport", backend)
		}
		rp.add(kv)
	}
	switch {
	case p.all:
		for _, f := range []int{1, 2, 3, 7, 8, 9} {
			if err := renderFig(rp.text(), f, p.n, p.r, backend); err != nil {
				return err
			}
			figKV(f)
		}
		if err := renderTable1(rp.text()); err != nil {
			return err
		}
		rp.add(cli.KV("table-1"))
	case p.table == 1:
		if err := renderTable1(rp.text()); err != nil {
			return err
		}
		rp.add(cli.KV("table-1"))
	case p.table != 0:
		return fmt.Errorf("unknown table %d (have 1)", p.table)
	case p.fig == 0:
		return fmt.Errorf("pick one of -fig 1|2|3|7|8|9, -table 1 or -all")
	default:
		if err := renderFig(rp.text(), p.fig, p.n, p.r, backend); err != nil {
			return err
		}
		figKV(p.fig)
	}
	return rp.flush()
}

func renderFig(w io.Writer, fig, n, r int, backend mpsim.Backend) error {
	switch fig {
	case 1:
		fmt.Fprintf(w, "=== Figure 1: memory-processor configurations before and after an index operation on %d processors ===\n\n", n)
		fmt.Fprintf(w, "before:\n%s\nafter:\n%s\n", trace.InitialIndex(n), trace.FinalIndex(n))
	case 2:
		fmt.Fprintf(w, "=== Figure 2: the three phases of the index operation on %d processors (r = n) ===\n\n", n)
		tr, err := trace.TraceIndex(n, n)
		if err != nil {
			return err
		}
		fmt.Fprint(w, tr)
		if err := verifyIndexOnBackend(n, n, backend); err != nil {
			return err
		}
		fmt.Fprintf(w, "(schedule verified byte-level on the %s transport)\n\n", backend)
	case 3:
		fmt.Fprintf(w, "=== Figure 3: the index algorithm with r = %d on %d processors (optimal C1) ===\n\n", r, n)
		tr, err := trace.TraceIndex(n, r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, tr)
		if err := verifyIndexOnBackend(n, r, backend); err != nil {
			return err
		}
		fmt.Fprintf(w, "(schedule verified byte-level on the %s transport)\n\n", backend)
	case 7, 8:
		root := fig - 7 // figure 7 is T0, figure 8 is T1
		fmt.Fprintf(w, "=== Figure %d: constructing the spanning tree rooted at node %d for n = 9 and k = 2 ===\n\n", fig, root)
		t0, err := circulant.BuildFullTree(9, 2, 0, circulant.Positive)
		if err != nil {
			return err
		}
		t := t0.Translate(root)
		for round := 0; round < t.Rounds(); round++ {
			fmt.Fprintf(w, "round %d edges:\n", round)
			for _, e := range t.RoundEdges(round) {
				fmt.Fprintf(w, "  %d -> %d  (offset %d)\n", e.Parent, e.Child, intmath.Mod(e.Child-e.Parent, 9))
			}
		}
		if root > 0 {
			fmt.Fprintf(w, "\n(T%d is T0 with %d added to every node label, mod 9.)\n", root, root)
		}
		fmt.Fprintln(w)
	case 9:
		fmt.Fprintf(w, "=== Figure 9: the one-port concatenation algorithm with %d processors ===\n\n", n)
		tr, err := trace.TraceConcat(n)
		if err != nil {
			return err
		}
		fmt.Fprint(w, tr)
		if err := verifyConcatOnBackend(n, backend); err != nil {
			return err
		}
		fmt.Fprintf(w, "(schedule verified byte-level on the %s transport)\n\n", backend)
	default:
		return fmt.Errorf("unknown figure %d (have 1, 2, 3, 7, 8, 9)", fig)
	}
	return nil
}

// verifyIndexOnBackend runs the radix-r index schedule the figure
// depicts on the real simulator with the selected transport, checking
// the defining permutation out[i][j] = in[j][i] byte for byte. Blocks
// encode their (processor, block) label, mirroring the figures' "ij"
// notation.
func verifyIndexOnBackend(n, r int, backend mpsim.Backend) error {
	e, err := mpsim.New(n, mpsim.WithTransport(backend))
	if err != nil {
		return err
	}
	g := mpsim.WorldGroup(n)
	in, err := buffers.New(n, n, 2)
	if err != nil {
		return err
	}
	out, err := buffers.New(n, n, 2)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			in.Block(i, j)[0], in.Block(i, j)[1] = byte(i), byte(j)
		}
	}
	if _, err := collective.IndexFlat(e, g, in, out, collective.IndexOptions{Radix: r}); err != nil {
		return fmt.Errorf("verifying on %s transport: %w", backend, err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if blk := out.Block(i, j); blk[0] != byte(j) || blk[1] != byte(i) {
				return fmt.Errorf("verification on %s transport: processor %d slot %d holds %d%d, want %d%d",
					backend, i, j, blk[0], blk[1], j, i)
			}
		}
	}
	return nil
}

// verifyConcatOnBackend runs the one-port circulant concatenation on
// the real simulator with the selected transport and checks the
// defining result out[i][j] = B[j].
func verifyConcatOnBackend(n int, backend mpsim.Backend) error {
	e, err := mpsim.New(n, mpsim.WithTransport(backend))
	if err != nil {
		return err
	}
	g := mpsim.WorldGroup(n)
	in, err := buffers.New(n, 1, 1)
	if err != nil {
		return err
	}
	out, err := buffers.New(n, n, 1)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		in.Block(i, 0)[0] = byte(i)
	}
	if _, err := collective.ConcatFlat(e, g, in, out, collective.ConcatOptions{}); err != nil {
		return fmt.Errorf("verifying on %s transport: %w", backend, err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if out.Block(i, j)[0] != byte(j) {
				return fmt.Errorf("verification on %s transport: processor %d slot %d holds %d, want %d",
					backend, i, j, out.Block(i, j)[0], j)
			}
		}
	}
	return nil
}

func renderTable1(w io.Writer) error {
	fmt.Fprintln(w, "=== Table 1: table partitioning for n1 = 3, n2 = 7, b = 3 bytes, k = 3 ports ===")
	fmt.Fprintln(w)
	const b, n2, n1, k = 3, 7, 3, 3
	plan, err := partition.Solve(b, n2, n1, k, partition.PreferOptimal)
	if err != nil {
		return err
	}
	// Render the table grid: rows are bytes, columns are the n2 yet
	// unspanned nodes; cells show the area number.
	cell := make([][]int, b)
	for row := range cell {
		cell[row] = make([]int, n2)
	}
	for _, areas := range plan.Rounds {
		for ai, area := range areas {
			for _, run := range area.Runs {
				for row := run.Row0; row < run.Row0+run.NRows; row++ {
					cell[row][run.Col] = ai + 1
				}
			}
		}
	}
	fmt.Fprintf(w, "        ")
	for c := 0; c < n2; c++ {
		fmt.Fprintf(w, " p%-3d", n1+c)
	}
	fmt.Fprintln(w)
	for row := 0; row < b; row++ {
		fmt.Fprintf(w, "byte %d: ", row)
		for c := 0; c < n2; c++ {
			fmt.Fprintf(w, " A%-3d", cell[row][c])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	for _, areas := range plan.Rounds {
		for ai, area := range areas {
			fmt.Fprintf(w, "area A%d: %d entries, columns %d-%d (span %d), offset %d\n",
				ai+1, area.Size, area.Left, area.Right(), area.Span(), n1+area.Left)
		}
	}
	fmt.Fprintln(w)
	return nil
}
