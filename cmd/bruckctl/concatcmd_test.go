package main

import (
	"strings"
	"testing"

	"bruck/internal/mpsim"
)

func TestRunBoundsAllOptimal(t *testing.T) {
	var sb strings.Builder
	if err := runBounds(textReporter(&sb), mpsim.BackendChan, 4); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "concatenation: achieved vs lower bounds") {
		t.Error("missing concatenation section")
	}
	if !strings.Contains(out, "index: achieved vs lower bounds") {
		t.Error("missing index section")
	}
	// Every concat row at b=4 must be optimal in both measures.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "concat") && strings.Contains(line, "false") {
			t.Errorf("non-optimal concat row: %s", line)
		}
	}
}

func TestRunOptimalitySpecialRange(t *testing.T) {
	var sb strings.Builder
	if err := runOptimality(textReporter(&sb), 4); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "special range sweep") {
		t.Error("missing header")
	}
	// n=63, k=3, b=4 is a genuine failure point and must appear with
	// "false" (no optimal single-round partition).
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "63") && strings.Contains(line, "false") {
			found = true
		}
	}
	if !found {
		t.Errorf("n=63 failure point missing from sweep:\n%s", out)
	}
}

func TestRunBaselines(t *testing.T) {
	for _, backend := range []mpsim.Backend{mpsim.BackendChan, mpsim.BackendSlot} {
		var sb strings.Builder
		if err := runBaselines(textReporter(&sb), backend, 4); err != nil {
			t.Fatal(err)
		}
		out := sb.String()
		for _, want := range []string{"circulant", "folklore", "ring", "recursive-doubling", "transport = " + string(backend)} {
			if !strings.Contains(out, want) {
				t.Errorf("%s output lacks %q", backend, want)
			}
		}
	}
}
