// The bench and compare subcommands are the perf-snapshot workflow:
// bench runs the curated suite (internal/benchsuite) and writes one
// canonical BENCH_<area>.json per area; compare diffs two snapshots
// and exits non-zero on regressions beyond the thresholds.
//
//	bruckctl bench                     # full suite -> BENCH_collectives.json, BENCH_reduce.json
//	bruckctl bench -short -out /tmp    # CI smoke settings, custom directory
//	bruckctl bench -area reduce -case allreduce
//	bruckctl compare BENCH_collectives.json /tmp/BENCH_collectives.json
//	bruckctl compare -ns-threshold 1000 old.json new.json   # gate on C1/C2/allocs only
//	bruckctl compare -selftest BENCH_collectives.json       # negative control
//
// Snapshot timings (ns/op) are machine-dependent; the C1/C2 schedule
// measures are deterministic and regress on any increase regardless of
// thresholds. -selftest injects a synthetic ns/op regression into the
// given snapshot and succeeds only if compare detects it — proving the
// gate can fail.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bruck/internal/benchsnap"
	"bruck/internal/benchsuite"
	"bruck/internal/cli"
)

type benchParams struct {
	short      bool
	area       string
	caseFilter string
	out        string
	reportJSON bool
}

func newBenchCmd() *command {
	fs := newFlagSet("bench")
	var p benchParams
	fs.BoolVar(&p.short, "short", false, "CI smoke settings: fewer iterations, no time floor")
	fs.StringVar(&p.area, "area", "", "only this snapshot area (collectives, hier, reduce, pipeline)")
	fs.StringVar(&p.caseFilter, cli.FlagCase, "", "only cases whose name contains this substring")
	fs.StringVar(&p.out, "out", ".", "directory the BENCH_<area>.json snapshots are written to")
	fs.BoolVar(&p.reportJSON, cli.FlagReportJSON, false, "emit the JSON report instead of text")
	c := &command{name: "bench", summary: "run the curated perf suite and write BENCH_<area>.json snapshots", fs: fs}
	c.exec = func(args []string, w io.Writer) error {
		if err := fs.Parse(args); err != nil {
			return err
		}
		return runBench(w, p)
	}
	return c
}

func runBench(w io.Writer, p benchParams) error {
	rp := newReporter(w, p.reportJSON)
	opt := benchsuite.DefaultOptions()
	if p.short {
		opt = benchsuite.ShortOptions()
	}
	areas := benchsuite.Areas()
	if p.area != "" {
		if len(benchsuite.ByArea(p.area)) == 0 {
			return fmt.Errorf("unknown bench area %q (have %s)", p.area, strings.Join(areas, ", "))
		}
		areas = []string{p.area}
	}
	measured := 0
	for _, area := range areas {
		s := benchsnap.New(area)
		for _, bn := range benchsuite.ByArea(area) {
			if !strings.Contains(bn.Name, p.caseFilter) {
				continue
			}
			c, err := benchsuite.Measure(bn, opt)
			if err != nil {
				return err
			}
			s.Cases = append(s.Cases, c)
			fmt.Fprintf(rp.text(), "%-34s %10d iters %12.0f ns/op %12.0f B/op %8.0f allocs/op  C1=%d C2=%d\n",
				c.Name, c.Iters, c.NsPerOp, c.BytesPerOp, c.AllocsPerOp, c.C1, c.C2)
		}
		if len(s.Cases) == 0 {
			continue
		}
		measured += len(s.Cases)
		data, err := s.Canonical()
		if err != nil {
			return err
		}
		// The write path round-trips through Parse so a snapshot that
		// fails its own schema can never reach disk.
		if _, err := benchsnap.Parse(data); err != nil {
			return fmt.Errorf("snapshot for area %q fails its own schema: %w", area, err)
		}
		path := filepath.Join(p.out, benchsnap.Filename(area))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(rp.text(), "wrote %s (%d cases)\n", path, len(s.Cases))
		t := &cli.Table{Name: "bench-" + area, Columns: []string{
			"name", "iters", "ns_per_op", "bytes_per_op", "allocs_per_op", "c1", "c2",
		}}
		for _, c := range s.Cases {
			t.AddRow(c.Name, fmt.Sprint(c.Iters), fmt.Sprintf("%.0f", c.NsPerOp),
				fmt.Sprintf("%.0f", c.BytesPerOp), fmt.Sprintf("%.0f", c.AllocsPerOp),
				fmt.Sprint(c.C1), fmt.Sprint(c.C2))
		}
		rp.add(t)
	}
	if measured == 0 {
		return fmt.Errorf("no bench cases match -area %q -case %q", p.area, p.caseFilter)
	}
	return rp.flush()
}

type compareParams struct {
	ns         float64
	bytes      float64
	allocs     float64
	selftest   bool
	reportJSON bool
}

func newCompareCmd() *command {
	fs := newFlagSet("compare")
	var p compareParams
	def := benchsnap.DefaultThresholds()
	fs.Float64Var(&p.ns, "ns-threshold", def.Ns, "allowed fractional ns/op growth (0.25 = +25%)")
	fs.Float64Var(&p.bytes, "bytes-threshold", def.Bytes, "allowed fractional B/op growth")
	fs.Float64Var(&p.allocs, "alloc-threshold", def.Allocs, "allowed fractional allocs/op growth")
	fs.BoolVar(&p.selftest, "selftest", false, "inject a synthetic ns/op regression into <old.json> and require compare to catch it")
	fs.BoolVar(&p.reportJSON, cli.FlagReportJSON, false, "emit the JSON report instead of text")
	c := &command{name: "compare", summary: "diff two bench snapshots, non-zero exit on regression", fs: fs}
	c.exec = func(args []string, w io.Writer) error {
		if err := fs.Parse(args); err != nil {
			return err
		}
		return runCompare(w, p, fs.Args())
	}
	return c
}

func runCompare(w io.Writer, p compareParams, args []string) error {
	th := benchsnap.Thresholds{Ns: p.ns, Bytes: p.bytes, Allocs: p.allocs}
	rp := newReporter(w, p.reportJSON)
	if p.selftest {
		if len(args) != 1 {
			return fmt.Errorf("usage: bruckctl compare -selftest <snapshot.json>")
		}
		return runCompareSelftest(rp, args[0], th)
	}
	if len(args) != 2 {
		return fmt.Errorf("usage: bruckctl compare [flags] <old.json> <new.json>")
	}
	oldSnap, err := readSnapshot(args[0])
	if err != nil {
		return err
	}
	newSnap, err := readSnapshot(args[1])
	if err != nil {
		return err
	}
	regs, err := benchsnap.Compare(oldSnap, newSnap, th)
	if err != nil {
		return err
	}
	t := &cli.Table{Name: "regressions", Columns: []string{"case", "metric", "old", "new", "allowed_frac"}}
	for _, r := range regs {
		fmt.Fprintf(rp.text(), "REGRESSION %s\n", r)
		t.AddRow(r.Case, r.Metric, fmt.Sprintf("%.6g", r.Old), fmt.Sprintf("%.6g", r.New), fmt.Sprintf("%.3g", r.Threshold))
	}
	rp.add(t)
	if len(regs) == 0 {
		fmt.Fprintf(rp.text(), "ok: %s within thresholds of %s (%d cases)\n", args[1], args[0], len(oldSnap.Cases))
	}
	if err := rp.flush(); err != nil {
		return err
	}
	if len(regs) > 0 {
		return fmt.Errorf("%d regressions against %s", len(regs), args[0])
	}
	return nil
}

// runCompareSelftest is the negative control: a copy of the snapshot
// with one ns/op value inflated past the threshold must FAIL the
// comparison, proving the gate detects what it claims to.
func runCompareSelftest(rp *reporter, path string, th benchsnap.Thresholds) error {
	s, err := readSnapshot(path)
	if err != nil {
		return err
	}
	if len(s.Cases) == 0 {
		return fmt.Errorf("%s has no cases to perturb", path)
	}
	perturbed := *s
	perturbed.Cases = append([]benchsnap.Case(nil), s.Cases...)
	perturbed.Cases[0].NsPerOp *= 1 + 2*(th.Ns+1)
	regs, err := benchsnap.Compare(s, &perturbed, th)
	if err != nil {
		return err
	}
	if len(regs) == 0 {
		return fmt.Errorf("selftest: injected ns/op regression in %q passed the comparison", s.Cases[0].Name)
	}
	fmt.Fprintf(rp.text(), "ok: selftest detected the injected regression (%s)\n", regs[0])
	kv := cli.KV("compare-selftest")
	kv.Add("snapshot", path)
	kv.Add("perturbed_case", s.Cases[0].Name)
	kv.Add("detected", true)
	rp.add(kv)
	return rp.flush()
}

func readSnapshot(path string) (*benchsnap.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := benchsnap.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
