package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// vetGoldenDir locates the committed corpus from this package's
// directory (tests run with the package dir as working directory).
const vetGoldenDir = "../../internal/golden/testdata/golden"

// TestVetGoldenCorpus: the committed corpus must pass static
// verification, and -perturb must turn every pass into a rejection.
func TestVetGoldenCorpus(t *testing.T) {
	var out bytes.Buffer
	if err := vetRun(vetGoldenDir, "", false, false, &out); err != nil {
		t.Fatalf("vet: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Fatalf("vet reported failures:\n%s", out.String())
	}

	out.Reset()
	if err := vetRun(vetGoldenDir, "", true, false, &out); err != nil {
		t.Errorf("vet -perturb: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "perturbation detected") {
		t.Errorf("vet -perturb did not report detections:\n%s", out.String())
	}
}

// TestVetReportJSON: the JSON report parses and covers every case.
func TestVetReportJSON(t *testing.T) {
	var out bytes.Buffer
	if err := vetRun(vetGoldenDir, "index-bruck", false, true, &out); err != nil {
		t.Fatalf("vet -report-json: %v\n%s", err, out.String())
	}
	var tables []struct {
		Name string     `json:"name"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(out.Bytes(), &tables); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if len(tables) != 1 || tables[0].Name != "vet" {
		t.Fatalf("report shape: %+v", tables)
	}
	for _, row := range tables[0].Rows {
		if row[1] != "ok" {
			t.Errorf("case %s status %q, want ok", row[0], row[1])
		}
	}
}

// TestVetBadInputs covers the error paths.
func TestVetBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := vetRun(vetGoldenDir, "no-such-case", false, false, &out); err == nil {
		t.Error("vet with an unmatched -case filter succeeded")
	}
	if err := vetRun(t.TempDir(), "", false, false, &out); err == nil {
		t.Error("vet against an empty artifact dir succeeded")
	}
}
