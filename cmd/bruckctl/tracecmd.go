// The trace subcommand records and verifies the golden schedule-trace
// corpus (internal/golden): canonical JSON artifacts of every
// representative collective schedule (the old cmd/trace).
//
//	bruckctl trace record  [-dir d] [-case substr] [-transport b]
//	bruckctl trace verify  [-dir d] [-case substr] [-transport b] [-chaos-seed s] [-chaos-inner b] [-stragglers 0,3] [-perturb]
//
// record captures each case live and (re)writes its artifact; verify
// captures each case live and diffs it against the committed artifact,
// exiting nonzero on any structural drift. Traces are
// transport-independent, so verify under -transport chaos proves the
// committed schedules survive adversarial timing. -perturb is the
// negative self-test: it structurally perturbs every live schedule and
// succeeds only if every case then FAILS verification — proving the
// diff actually detects drift.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bruck/internal/cli"
	"bruck/internal/golden"
)

func newTraceCmd() *command {
	// The flag set registered here is the verify set (the superset);
	// traceRun builds its own identical set per mode so the positional
	// mode word can precede the flags.
	fs := newFlagSet("trace")
	registerTraceFlags(fs)
	c := &command{name: "trace", summary: "record/verify the golden schedule corpus", fs: fs}
	c.exec = func(args []string, w io.Writer) error {
		return traceRun(args, w)
	}
	return c
}

// traceFlags is one trace invocation's configuration.
type traceFlags struct {
	dir        *string
	caseFilter *string
	tf         *cli.TransportFlags
	perturb    *bool
	reportJSON *bool
}

func registerTraceFlags(fs *flag.FlagSet) traceFlags {
	var f traceFlags
	f.dir = fs.String("dir", defaultTraceDir(), "golden artifact directory")
	f.caseFilter = fs.String(cli.FlagCase, "", "only cases whose name contains this substring")
	f.tf = cli.RegisterTransportFlags(fs)
	f.perturb = fs.Bool("perturb", false, "verify only: perturb each live schedule and require verification to fail")
	f.reportJSON = fs.Bool(cli.FlagReportJSON, false, "emit the JSON report instead of text")
	return f
}

func traceRun(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: bruckctl trace <record|verify> [flags]")
	}
	mode := args[0]
	fs := newFlagSet("trace " + mode)
	f := registerTraceFlags(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	opts, err := f.tf.EngineOptions()
	if err != nil {
		return err
	}
	rp := newReporter(out, *f.reportJSON)
	w := rp.text()

	cases := make([]golden.Case, 0, 16)
	for _, c := range golden.Corpus() {
		if strings.Contains(c.Name, *f.caseFilter) {
			cases = append(cases, c)
		}
	}
	if len(cases) == 0 {
		return fmt.Errorf("no cases match -case %q", *f.caseFilter)
	}

	report := &cli.Table{Name: "trace-" + mode, Columns: []string{"case", "status", "detail"}}
	switch mode {
	case "record":
		for _, c := range cases {
			s, err := golden.Capture(c, opts...)
			if err != nil {
				return err
			}
			if err := golden.Write(*f.dir, c, s); err != nil {
				return err
			}
			fmt.Fprintf(w, "recorded %s (%d rounds)\n", golden.Path(*f.dir, c), s.C1)
			report.AddRow(c.Name, "recorded", fmt.Sprintf("%d rounds", s.C1))
		}
		rp.add(report)
		return rp.flush()
	case "verify":
		failed := 0
		for _, c := range cases {
			s, err := golden.Capture(c, opts...)
			if err != nil {
				return err
			}
			if *f.perturb {
				golden.Perturb(s)
			}
			diffs, err := golden.Verify(*f.dir, c, s)
			if err != nil {
				return err
			}
			switch {
			case *f.perturb && len(diffs) == 0:
				failed++
				fmt.Fprintf(w, "FAIL %s: perturbed schedule passed verification\n", c.Name)
				report.AddRow(c.Name, "FAIL", "perturbed schedule passed verification")
			case *f.perturb:
				fmt.Fprintf(w, "ok   %s: perturbation detected (%d diffs)\n", c.Name, len(diffs))
				report.AddRow(c.Name, "ok", fmt.Sprintf("perturbation detected (%d diffs)", len(diffs)))
			case len(diffs) != 0:
				failed++
				fmt.Fprintf(w, "FAIL %s:\n", c.Name)
				for _, d := range diffs {
					fmt.Fprintf(w, "  %s\n", d)
				}
				report.AddRow(c.Name, "FAIL", strings.Join(diffs, "; "))
			default:
				fmt.Fprintf(w, "ok   %s\n", c.Name)
				report.AddRow(c.Name, "ok", "")
			}
		}
		rp.add(report)
		if err := rp.flush(); err != nil {
			return err
		}
		if failed > 0 {
			return fmt.Errorf("%d of %d cases failed", failed, len(cases))
		}
		return nil
	default:
		return fmt.Errorf("unknown trace mode %q (want record or verify)", mode)
	}
}

// defaultTraceDir locates the committed corpus: golden.Dir is relative
// to the internal/golden package directory, so from a repo-root working
// directory the artifacts live under internal/golden. Fall back to the
// bare golden.Dir when run from that package directory itself.
func defaultTraceDir() string {
	repoRel := filepath.Join("internal", "golden", golden.Dir)
	if _, err := os.Stat(repoRel); err == nil {
		return repoRel
	}
	return golden.Dir
}
