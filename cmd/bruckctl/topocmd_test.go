package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunTopology: the -topology path executes and verifies the
// hierarchical schedule of each supported operation and prints the
// per-phase and per-level breakdown.
func TestRunTopology(t *testing.T) {
	for _, p := range []params{
		{op: "index", k: 1, b: 16, topology: "4x4"},
		{op: "index", k: 2, b: 8, topology: "3,3,3"},
		{op: "concat", k: 1, b: 8, topology: "4,4,3"},
		{op: "allreduce", k: 1, b: 16, topology: "4x4", kernel: "sum:int32"},
	} {
		var sb strings.Builder
		if err := runOp(&sb, p); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		out := sb.String()
		for _, want := range []string{
			"hierarchical " + p.op + ":", "phases", "intra:", "inter:",
			"model time hier", "winner:", "critical path",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("%+v: output lacks %q:\n%s", p, want, out)
			}
		}
	}
}

// TestRunTopologyCustomProfiles: an explicit per-class profile pair in
// the spec reaches the run.
func TestRunTopologyCustomProfiles(t *testing.T) {
	var sb strings.Builder
	p := params{op: "concat", k: 1, b: 4, topology: "2x4:29e-6,0.117e-6/29e-5,0.117e-5"}
	if err := runOp(&sb, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hierarchical concat: n=8") {
		t.Errorf("spec should size the machine at 8:\n%s", sb.String())
	}
}

// TestRunTopologyTransports: the hierarchical run works on every
// transport, including chaos with stragglers.
func TestRunTopologyTransports(t *testing.T) {
	for _, p := range []params{
		{op: "index", k: 1, b: 8, topology: "4x2", transport: "slot"},
		{op: "index", k: 1, b: 8, topology: "4x2", transport: "chaos", chaosSeed: 7, stragglers: "2,3"},
	} {
		var sb strings.Builder
		if err := runOp(&sb, p); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if !strings.Contains(sb.String(), "transport="+p.transport) {
			t.Errorf("%+v: output lacks transport line:\n%s", p, sb.String())
		}
	}
}

// TestRunTopologyJSON: -report-json emits the topology-run section and
// one phase row per compiled phase.
func TestRunTopologyJSON(t *testing.T) {
	var sb strings.Builder
	if err := runOp(&sb, params{op: "index", k: 1, b: 8, topology: "4x4", reportJSON: true}); err != nil {
		t.Fatal(err)
	}
	var sections []struct {
		Name string     `json:"name"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &sections); err != nil {
		t.Fatalf("-report-json output is not JSON: %v\n%s", err, sb.String())
	}
	got := map[string]int{}
	for _, s := range sections {
		got[s.Name] = len(s.Rows)
	}
	if got["topology-run"] == 0 {
		t.Errorf("missing topology-run section: %v", got)
	}
	if got["topology-phases"] < 3 {
		t.Errorf("expected at least 3 phase rows, got %d", got["topology-phases"])
	}
}

// TestRunTopologyErrors: malformed specs and unsupported operations.
func TestRunTopologyErrors(t *testing.T) {
	var sb strings.Builder
	if err := runOp(&sb, params{op: "index", k: 1, b: 8, topology: "nonsense"}); err == nil {
		t.Error("bad topology spec accepted")
	}
	if err := runOp(&sb, params{op: "reducescatter", k: 1, b: 8, topology: "4x4", kernel: "sum:int32"}); err == nil {
		t.Error("-topology with reducescatter accepted")
	}
	if err := runOp(&sb, params{op: "allreduce", k: 1, b: 8, topology: "4x4", kernel: "nonsense"}); err == nil {
		t.Error("bad kernel accepted")
	}
	if err := runOp(&sb, params{op: "allreduce", k: 1, b: 8, topoCross: true, kernel: "sum:int32"}); err == nil {
		t.Error("-crossover-topology with allreduce accepted")
	}
}

// TestRunTopoCrossover: the sweep renders the study table and one
// summary line per (n, ratio) pair, and the JSON mode carries both
// sections.
func TestRunTopoCrossover(t *testing.T) {
	var sb strings.Builder
	if err := runOp(&sb, params{op: "index", k: 1, topoCross: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"topology crossover study", "winner", "ratio=10", "n=16"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	// The headline claim of the study: at a 10:1 ratio and n=16 the
	// hierarchical schedule wins the latency-bound end of the sweep.
	hierWon := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, " 16 ") && strings.Contains(line, "    10 ") &&
			strings.HasSuffix(strings.TrimRight(line, " "), "hier") {
			hierWon = true
		}
	}
	if !hierWon {
		t.Errorf("no hierarchical win at n=16 ratio=10:\n%s", out)
	}

	var jb strings.Builder
	if err := runOp(&jb, params{op: "concat", k: 1, topoCross: true, reportJSON: true}); err != nil {
		t.Fatal(err)
	}
	var sections []struct {
		Name string     `json:"name"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(jb.String()), &sections); err != nil {
		t.Fatalf("-report-json output is not JSON: %v", err)
	}
	names := map[string]bool{}
	for _, s := range sections {
		names[s.Name] = true
	}
	if !names["topology-crossover"] || !names["topology-crossover-summary"] {
		t.Errorf("missing crossover sections, got %v", names)
	}
}
