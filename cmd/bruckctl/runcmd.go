// The run subcommand executes a single collective operation on the
// simulated multiport machine and reports its schedule measures and
// model times (the old cmd/alltoall).
//
//	bruckctl run -op index  -n 64 -b 128 -radix 8 -k 1
//	bruckctl run -op concat -n 17 -b 64 -k 2
//	bruckctl run -op index  -n 64 -b 128 -radix auto      # tuned radix
//	bruckctl run -op index  -n 64 -b 128 -flat            # zero-copy flat-buffer path
//	bruckctl run -op index  -n 64 -b 128 -transport slot  # shared-memory slot transport
//	bruckctl run -op index  -n 64 -b 128 -transport chaos -chaos-seed 7 -stragglers 0,3
//	bruckctl run -op index  -n 64 -b 128 -repeat 100      # plan-reuse study
//	bruckctl run -op index  -n 32 -b 256 -ragged 1.2      # skewed-size ragged study
//	bruckctl run -op index  -n 16 -b 65536 -segments 4    # segment-pipelined schedule
//	bruckctl run -op index  -n 16 -k 1 -crossover-segments # segmented-vs-monolithic sweep
//	bruckctl run -op reducescatter -n 16 -b 64 -kernel sum:float32
//	bruckctl run -op allreduce -n 16 -b 64 -alg auto      # cost-model reduce dispatch
//
// The reduction operations (-op reducescatter / allreduce) combine
// blocks with the kernel named by -kernel (op:type) where the plain
// collectives copy them; -alg selects the reduce-scatter schedule
// (ring, halving, bruck, or auto for the cost-model verdict), and the
// result is verified against a locally computed serial reduce.
//
// With -repeat N (N > 1) the command runs the operation N times twice
// over on flat buffers — once compiling the schedule on every call and
// once executing a single precompiled plan — verifies both produce the
// same bytes, and reports the wall-clock per operation of each mode.
//
// With -ragged s (s > 0) the command builds a Zipf-ish skewed layout —
// block sizes fall off as b / rank^s, with the smallest rounding to
// zero-length blocks — runs every ragged-capable schedule (padded
// Bruck, exact-extent direct/ring, and the cost-model auto dispatch) on
// it, verifies each result byte-for-byte against a locally computed
// direct reference exchange, and tabulates C1, C2, the non-uniform
// lower bound and the model times.
package main

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"bruck/internal/blocks"
	"bruck/internal/buffers"
	"bruck/internal/cli"
	"bruck/internal/collective"
	"bruck/internal/costmodel"
	"bruck/internal/lowerbound"
	"bruck/internal/mpsim"
	"bruck/internal/sweep"
)

// params collects one run invocation's configuration.
type params struct {
	op         string
	n          int
	k          int
	b          int
	radix      string
	alg        string
	flat       bool
	transport  string
	chaosInner string
	chaosSeed  uint64
	stragglers string
	repeat     int
	ragged     float64
	kernel     string
	segments   string
	crossover  bool
	topology   string
	topoCross  bool
	reportJSON bool
}

func newRunCmd() *command {
	fs := newFlagSet("run")
	var p params
	fs.StringVar(&p.op, "op", "index", "operation: index, concat, reducescatter or allreduce")
	fs.IntVar(&p.n, cli.FlagN, 16, "number of processors")
	fs.IntVar(&p.k, cli.FlagPorts, 1, "ports per processor")
	fs.IntVar(&p.b, cli.FlagBytes, 64, "block size in bytes")
	fs.StringVar(&p.radix, cli.FlagRadix, "", "index radix (2..n), empty for k+1, or 'auto' for model-tuned")
	fs.StringVar(&p.radix, cli.FlagRadixAlias, "", "alias for -radix")
	fs.StringVar(&p.alg, "alg", "", "algorithm override (index: bruck|direct|xor; concat: circulant|folklore|ring|recdbl; reducescatter/allreduce: ring|halving|bruck|auto)")
	fs.BoolVar(&p.flat, "flat", false, "run the zero-copy flat-buffer path (IndexFlat/ConcatFlat)")
	tf := cli.RegisterTransportFlags(fs)
	fs.IntVar(&p.repeat, "repeat", 1, "run the operation N times and compare compile-per-call vs plan reuse")
	fs.Float64Var(&p.ragged, "ragged", 0, "run a skewed-size ragged study with Zipf exponent <skew> (block sizes ~ b/rank^skew)")
	fs.StringVar(&p.kernel, "kernel", "sum:int32", "reduction kernel as op:type (sum|min|max : int32|int64|float32|float64)")
	fs.StringVar(&p.segments, "segments", "", "pipeline the packed Bruck schedule over <s> segments (2..), 'auto' for the model-tuned count, empty for monolithic")
	fs.BoolVar(&p.crossover, "crossover-segments", false, "sweep block sizes and report where the segmented index schedule overtakes the monolithic one")
	fs.StringVar(&p.topology, "topology", "", "two-level topology spec <groups>x<size>[:beta,tau/beta,tau] — run the hierarchical schedule on it (the spec defines the machine size; -n is ignored)")
	fs.BoolVar(&p.topoCross, "crossover-topology", false, "sweep (n, b, inter/intra ratio) and tabulate flat vs hierarchical modeled times")
	fs.BoolVar(&p.reportJSON, cli.FlagReportJSON, false, "emit the JSON report instead of text")
	c := &command{name: "run", summary: "run one collective and report schedule measures vs bounds", fs: fs}
	c.exec = func(args []string, w io.Writer) error {
		if err := fs.Parse(args); err != nil {
			return err
		}
		p.transport, p.chaosInner, p.chaosSeed, p.stragglers = tf.Transport, tf.ChaosInner, tf.ChaosSeed, tf.Stragglers
		return runOp(w, p)
	}
	return c
}

func runOp(w io.Writer, p params) error {
	rp := newReporter(w, p.reportJSON)
	if err := runOpInto(rp, p); err != nil {
		return err
	}
	return rp.flush()
}

func runOpInto(rp *reporter, p params) error {
	w := rp.text()
	if p.crossover {
		return runSegmentCrossover(rp, p)
	}
	if p.topoCross {
		return runTopoCrossover(rp, p)
	}
	if p.topology != "" {
		return runTopology(rp, p)
	}
	tfl := cli.TransportFlags{Transport: p.transport, ChaosInner: p.chaosInner, ChaosSeed: p.chaosSeed, Stragglers: p.stragglers}
	if tfl.Transport == "" {
		tfl.Transport = "chan"
	}
	if tfl.ChaosInner == "" {
		tfl.ChaosInner = "chan"
	}
	topts, err := tfl.EngineOptions()
	if err != nil {
		return err
	}
	eopts := append([]mpsim.Option{mpsim.Ports(p.k), mpsim.Record(true)}, topts...)
	e, err := mpsim.New(p.n, eopts...)
	if err != nil {
		return err
	}
	g := mpsim.WorldGroup(p.n)

	if p.ragged > 0 {
		return runRagged(rp, p, e, g)
	}

	kv := cli.KV("run")
	kv.Add("op", p.op)
	kv.Add("n", p.n)
	kv.Add("k", p.k)
	kv.Add("b", p.b)
	var res *collective.Result
	switch p.op {
	case "index":
		opt := collective.IndexOptions{}
		switch p.alg {
		case "", "bruck":
			opt.Algorithm = collective.IndexBruck
		case "direct":
			opt.Algorithm = collective.IndexDirect
		case "xor":
			opt.Algorithm = collective.IndexPairwiseXOR
		default:
			return fmt.Errorf("unknown index algorithm %q", p.alg)
		}
		switch p.radix {
		case "":
		case "auto":
			opt.Radix = collective.OptimalRadix(costmodel.SP1, p.n, p.b, p.k, false)
			fmt.Fprintf(w, "tuned radix: %d\n", opt.Radix)
			kv.Add("tuned_radix", opt.Radix)
		default:
			r, err := strconv.Atoi(p.radix)
			if err != nil {
				return fmt.Errorf("bad radix %q: %v", p.radix, err)
			}
			opt.Radix = r
		}
		seg, err := parseSegments(p.segments)
		if err != nil {
			return err
		}
		opt.Segments = seg
		if p.repeat > 1 {
			return runIndexRepeat(rp, p, e, g, opt)
		}
		if p.flat {
			fin, ferr := buffers.New(p.n, p.n, p.b)
			if ferr != nil {
				return ferr
			}
			fout, ferr := buffers.New(p.n, p.n, p.b)
			if ferr != nil {
				return ferr
			}
			res, err = collective.IndexFlat(e, g, fin, fout, opt)
		} else {
			in := make([][][]byte, p.n)
			for i := range in {
				in[i] = make([][]byte, p.n)
				for j := range in[i] {
					in[i][j] = make([]byte, p.b)
				}
			}
			_, res, err = collective.Index(e, g, in, opt)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "index: n=%d k=%d b=%d alg=%v path=%s transport=%s\n", p.n, p.k, p.b, opt.Algorithm, pathName(p.flat), e.Transport())
		if p.segments != "" {
			fmt.Fprintf(w, "  segments requested: %s\n", p.segments)
			kv.Add("segments", p.segments)
		}
		fmt.Fprintf(w, "  C1 = %d rounds   (lower bound %d)\n", res.C1, lowerbound.IndexRounds(p.n, p.k))
		fmt.Fprintf(w, "  C2 = %d bytes    (lower bound %d)\n", res.C2, lowerbound.IndexVolume(p.n, p.b, p.k))
		kv.Add("alg", opt.Algorithm)
		kv.Add("c1_lower_bound", lowerbound.IndexRounds(p.n, p.k))
		kv.Add("c2_lower_bound", lowerbound.IndexVolume(p.n, p.b, p.k))

	case "concat":
		opt := collective.ConcatOptions{}
		switch p.alg {
		case "", "circulant":
			opt.Algorithm = collective.ConcatCirculant
		case "folklore":
			opt.Algorithm = collective.ConcatFolklore
		case "ring":
			opt.Algorithm = collective.ConcatRing
		case "recdbl":
			opt.Algorithm = collective.ConcatRecursiveDoubling
		default:
			return fmt.Errorf("unknown concat algorithm %q", p.alg)
		}
		if p.repeat > 1 {
			return runConcatRepeat(rp, p, e, g, opt)
		}
		if p.flat {
			fin, ferr := buffers.New(p.n, 1, p.b)
			if ferr != nil {
				return ferr
			}
			fout, ferr := buffers.New(p.n, p.n, p.b)
			if ferr != nil {
				return ferr
			}
			res, err = collective.ConcatFlat(e, g, fin, fout, opt)
		} else {
			in := make([][]byte, p.n)
			for i := range in {
				in[i] = make([]byte, p.b)
			}
			_, res, err = collective.Concat(e, g, in, opt)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "concat: n=%d k=%d b=%d alg=%v path=%s transport=%s\n", p.n, p.k, p.b, opt.Algorithm, pathName(p.flat), e.Transport())
		fmt.Fprintf(w, "  C1 = %d rounds   (lower bound %d)\n", res.C1, lowerbound.ConcatRounds(p.n, p.k))
		fmt.Fprintf(w, "  C2 = %d bytes    (lower bound %d)\n", res.C2, lowerbound.ConcatVolume(p.n, p.b, p.k))
		kv.Add("alg", opt.Algorithm)
		kv.Add("c1_lower_bound", lowerbound.ConcatRounds(p.n, p.k))
		kv.Add("c2_lower_bound", lowerbound.ConcatVolume(p.n, p.b, p.k))

	case "reducescatter", "allreduce":
		return runReduce(rp, p, e, g)

	default:
		return fmt.Errorf("unknown operation %q", p.op)
	}

	fmt.Fprintf(w, "  total traffic = %d bytes in %d messages\n", res.TotalBytes, res.Messages)
	fmt.Fprintf(w, "  model time (SP-1 linear):    %v\n", costmodel.Duration(costmodel.SP1.Time(res.C1, res.C2)))
	fmt.Fprintf(w, "  model time (SP-1 extended):  %v\n", costmodel.Duration(costmodel.SP1Measured.Time(res.C1, res.C2)))
	kv.Add("path", pathName(p.flat))
	kv.Add("transport", e.Transport())
	kv.Add("c1", res.C1)
	kv.Add("c2", res.C2)
	kv.Add("total_bytes", res.TotalBytes)
	kv.Add("messages", res.Messages)
	kv.Add("model_sp1_linear", costmodel.Duration(costmodel.SP1.Time(res.C1, res.C2)))
	kv.Add("model_sp1_extended", costmodel.Duration(costmodel.SP1Measured.Time(res.C1, res.C2)))
	if cp, err := costmodel.CriticalPath(costmodel.SP1, p.n, e.Metrics().Events()); err == nil {
		fmt.Fprintf(w, "  critical path (SP-1 linear): %v\n", costmodel.Duration(cp))
		kv.Add("critical_path_sp1", costmodel.Duration(cp))
	}
	rp.add(kv)
	return nil
}

func pathName(flat bool) string {
	if flat {
		return "flat"
	}
	return "legacy"
}

// runIndexRepeat is the plan-reuse study for the index operation: the
// same configuration executed p.repeat times compiling on every call,
// then p.repeat times through one precompiled plan, with a byte-level
// equivalence check between the two result sets.
func runIndexRepeat(rp *reporter, p params, e *mpsim.Engine, g *mpsim.Group, opt collective.IndexOptions) error {
	fin, err := buffers.New(p.n, p.n, p.b)
	if err != nil {
		return err
	}
	fillPattern(fin)
	perCallOut, err := buffers.New(p.n, p.n, p.b)
	if err != nil {
		return err
	}
	planOut, err := buffers.New(p.n, p.n, p.b)
	if err != nil {
		return err
	}
	plan, err := collective.CompileIndex(e, g, p.b, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(rp.text(), "index plan-reuse study: n=%d k=%d b=%d alg=%v transport=%s repeat=%d\n",
		p.n, p.k, p.b, opt.Algorithm, e.Transport(), p.repeat)
	return repeatStudy(rp, p, fmt.Sprint(opt.Algorithm), e, plan,
		func() error { _, err := collective.IndexFlat(e, g, fin, perCallOut, opt); return err },
		func() error { _, err := plan.Execute(fin, planOut); return err },
		perCallOut, planOut)
}

// runConcatRepeat is the plan-reuse study for the concatenation, where
// compile-per-call includes re-solving the last-round table partition.
func runConcatRepeat(rp *reporter, p params, e *mpsim.Engine, g *mpsim.Group, opt collective.ConcatOptions) error {
	fin, err := buffers.New(p.n, 1, p.b)
	if err != nil {
		return err
	}
	fillPattern(fin)
	perCallOut, err := buffers.New(p.n, p.n, p.b)
	if err != nil {
		return err
	}
	planOut, err := buffers.New(p.n, p.n, p.b)
	if err != nil {
		return err
	}
	plan, err := collective.CompileConcat(e, g, p.b, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(rp.text(), "concat plan-reuse study: n=%d k=%d b=%d alg=%v transport=%s repeat=%d\n",
		p.n, p.k, p.b, opt.Algorithm, e.Transport(), p.repeat)
	return repeatStudy(rp, p, fmt.Sprint(opt.Algorithm), e, plan,
		func() error { _, err := collective.ConcatFlat(e, g, fin, perCallOut, opt); return err },
		func() error { _, err := plan.Execute(fin, planOut); return err },
		perCallOut, planOut)
}

// repeatStudy times the two execution modes, checks byte equivalence,
// and prints the comparison.
func repeatStudy(rp *reporter, p params, alg string, e *mpsim.Engine, plan *collective.Plan,
	perCall, planned func() error, perCallOut, planOut *buffers.Buffers) error {
	w := rp.text()
	// Warm both paths once so transport pools reach steady state before
	// the timed loops.
	if err := perCall(); err != nil {
		return err
	}
	if err := planned(); err != nil {
		return err
	}

	//lint:allow detrand wall-clock latency is the quantity being reported, not part of any snapshot
	start := time.Now()
	for i := 0; i < p.repeat; i++ {
		if err := perCall(); err != nil {
			return err
		}
	}
	perCallAvg := time.Since(start) / time.Duration(p.repeat)

	//lint:allow detrand wall-clock latency is the quantity being reported, not part of any snapshot
	start = time.Now()
	for i := 0; i < p.repeat; i++ {
		if err := planned(); err != nil {
			return err
		}
	}
	planAvg := time.Since(start) / time.Duration(p.repeat)

	if !perCallOut.Equal(planOut) {
		return fmt.Errorf("plan execution diverged from compile-per-call results")
	}
	fmt.Fprintf(w, "  schedule: %d rounds, largest pooled buffer %d bytes\n", plan.Rounds(), plan.MaxMessageBytes())
	fmt.Fprintf(w, "  compile-per-call: %v/op\n", perCallAvg)
	fmt.Fprintf(w, "  plan-reuse:       %v/op\n", planAvg)
	if planAvg > 0 {
		fmt.Fprintf(w, "  speedup:          %.2fx\n", float64(perCallAvg)/float64(planAvg))
	}
	fmt.Fprintln(w, "  results byte-identical across modes: ok")

	kv := cli.KV("plan-reuse-study")
	kv.Add("op", p.op)
	kv.Add("n", p.n)
	kv.Add("k", p.k)
	kv.Add("b", p.b)
	kv.Add("alg", alg)
	kv.Add("transport", e.Transport())
	kv.Add("repeat", p.repeat)
	kv.Add("rounds", plan.Rounds())
	kv.Add("max_message_bytes", plan.MaxMessageBytes())
	kv.Add("compile_per_call_ns", perCallAvg.Nanoseconds())
	kv.Add("plan_reuse_ns", planAvg.Nanoseconds())
	if planAvg > 0 {
		kv.Add("speedup", fmt.Sprintf("%.2f", float64(perCallAvg)/float64(planAvg)))
	}
	kv.Add("byte_identical", true)
	rp.add(kv)
	return nil
}

// fillPattern writes the deterministic study pattern into a flat
// buffer.
func fillPattern(b *buffers.Buffers) {
	fillPatternBytes(b.Bytes())
}

// zipfCounts returns the Zipf-ish skewed block-size table of the
// ragged study: block (i, j) gets round(b / m^skew) bytes with
// m = ((i+j) mod n) + 1, so every processor sends a mix of large and
// small blocks and heavy skews produce genuine zero-length blocks.
func zipfCounts(n, b int, skew float64) [][]int {
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
		for j := range counts[i] {
			m := float64((i+j)%n + 1)
			counts[i][j] = int(float64(b)/math.Pow(m, skew) + 0.5)
		}
	}
	return counts
}

// zipfVector is zipfCounts for the concatenation's per-processor
// contributions.
func zipfVector(n, b int, skew float64) []int {
	counts := make([]int, n)
	for i := range counts {
		counts[i] = int(float64(b)/math.Pow(float64(i+1), skew) + 0.5)
	}
	return counts
}

// studyEntry is one candidate schedule of the ragged study.
type studyEntry struct {
	name string
	plan *collective.Plan
	err  error
}

// runRagged is the skewed-size study: every ragged-capable schedule of
// the chosen operation runs on the same Zipf-ish layout, each result is
// verified byte-for-byte against a locally computed reference, and the
// schedules' measures and model times are tabulated.
func runRagged(rp *reporter, p params, e *mpsim.Engine, g *mpsim.Group) error {
	w := rp.text()
	cache := collective.NewPlanCache()
	kv := cli.KV("ragged-study")
	kv.Add("op", p.op)
	kv.Add("n", p.n)
	kv.Add("k", p.k)
	kv.Add("b", p.b)
	kv.Add("skew", fmt.Sprintf("%.2f", p.ragged))
	kv.Add("transport", e.Transport())
	sched := &cli.Table{Name: "schedules", Columns: []string{"schedule", "c1", "c2", "model_sp1"}}
	switch p.op {
	case "index":
		counts := zipfCounts(p.n, p.b, p.ragged)
		l, err := blocks.Ragged(counts)
		if err != nil {
			return err
		}
		vin, err := buffers.NewRagged(l)
		if err != nil {
			return err
		}
		fillPatternBytes(vin.Bytes())
		// The direct per-pair reference exchange, computed locally:
		// out.Block(i, j) = in.Block(j, i).
		ref, err := buffers.NewRagged(l.Transpose())
		if err != nil {
			return err
		}
		for i := 0; i < p.n; i++ {
			for j := 0; j < p.n; j++ {
				copy(ref.Block(i, j), vin.Block(j, i))
			}
		}
		zeros := 0
		for i := range counts {
			for j := range counts[i] {
				if counts[i][j] == 0 {
					zeros++
				}
			}
		}
		fmt.Fprintf(w, "ragged index study: n=%d k=%d b=%d skew=%.2f transport=%s\n",
			p.n, p.k, p.b, p.ragged, e.Transport())
		fmt.Fprintf(w, "  layout: %d payload bytes, largest block %d, zero-length blocks %d, C2 lower bound %d\n",
			l.Total(), l.Max(), zeros, lowerbound.IndexVVolume(counts, p.k))
		kv.Add("payload_bytes", l.Total())
		kv.Add("largest_block", l.Max())
		kv.Add("zero_length_blocks", zeros)
		kv.Add("c2_lower_bound", lowerbound.IndexVVolume(counts, p.k))

		defPlan, defErr := cache.IndexVPlan(e, g, l, collective.IndexOptions{})
		maxPlan, maxErr := cache.IndexVPlan(e, g, l, collective.IndexOptions{Radix: p.n})
		dirPlan, dirErr := cache.IndexVPlan(e, g, l, collective.IndexOptions{Algorithm: collective.IndexDirect})
		autoPlan, autoErr := cache.AutoIndexVPlan(e, g, l, costmodel.SP1)
		plans := []studyEntry{
			{"bruck r=k+1", defPlan, defErr},
			{fmt.Sprintf("bruck r=%d", p.n), maxPlan, maxErr},
			{"direct", dirPlan, dirErr},
			{"auto (SP-1)", autoPlan, autoErr},
		}

		for _, entry := range plans {
			if entry.err != nil {
				return fmt.Errorf("%s: %v", entry.name, entry.err)
			}
			vout, err := buffers.NewRagged(l.Transpose())
			if err != nil {
				return err
			}
			res, err := entry.plan.ExecuteV(vin, vout)
			if err != nil {
				return fmt.Errorf("%s: %v", entry.name, err)
			}
			if !vout.Equal(ref) {
				return fmt.Errorf("%s: result diverges from the direct reference exchange", entry.name)
			}
			fmt.Fprintf(w, "  %-12s C1=%4d  C2=%8d  model(SP-1)=%v\n",
				entry.name, res.C1, res.C2, costmodel.Duration(costmodel.SP1.Time(res.C1, res.C2)))
			sched.AddRow(entry.name, fmt.Sprint(res.C1), fmt.Sprint(res.C2),
				fmt.Sprint(costmodel.Duration(costmodel.SP1.Time(res.C1, res.C2))))
		}
		fmt.Fprintf(w, "  auto dispatch picked: %s (%d rounds)\n", autoPlan.Algorithm(), autoPlan.Rounds())
		fmt.Fprintln(w, "  all results byte-identical to the direct reference exchange: ok")
		kv.Add("auto_pick", autoPlan.Algorithm())
		kv.Add("byte_identical", true)
		rp.add(kv)
		rp.add(sched)
		return nil

	case "concat":
		counts := zipfVector(p.n, p.b, p.ragged)
		l, err := blocks.RaggedVector(counts)
		if err != nil {
			return err
		}
		vin, err := buffers.NewRagged(l)
		if err != nil {
			return err
		}
		fillPatternBytes(vin.Bytes())
		outL, err := l.ConcatOut()
		if err != nil {
			return err
		}
		ref, err := buffers.NewRagged(outL)
		if err != nil {
			return err
		}
		for i := 0; i < p.n; i++ {
			for j := 0; j < p.n; j++ {
				copy(ref.Block(i, j), vin.Block(j, 0))
			}
		}
		fmt.Fprintf(w, "ragged concat study: n=%d k=%d b=%d skew=%.2f transport=%s\n",
			p.n, p.k, p.b, p.ragged, e.Transport())
		fmt.Fprintf(w, "  layout: %d payload bytes, largest block %d, C2 lower bound %d\n",
			l.Total(), l.Max(), lowerbound.ConcatVVolume(counts, p.k))
		kv.Add("payload_bytes", l.Total())
		kv.Add("largest_block", l.Max())
		kv.Add("c2_lower_bound", lowerbound.ConcatVVolume(counts, p.k))

		circ, cerr := cache.ConcatVPlan(e, g, l, collective.ConcatOptions{})
		ring, rerr := cache.ConcatVPlan(e, g, l, collective.ConcatOptions{Algorithm: collective.ConcatRing})
		auto, aerr := cache.AutoConcatVPlan(e, g, l, costmodel.SP1, 0)
		for _, en := range []studyEntry{
			{"circulant", circ, cerr},
			{"ring", ring, rerr},
			{"auto (SP-1)", auto, aerr},
		} {
			if en.err != nil {
				return fmt.Errorf("%s: %v", en.name, en.err)
			}
			vout, err := buffers.NewRagged(outL)
			if err != nil {
				return err
			}
			res, err := en.plan.ExecuteV(vin, vout)
			if err != nil {
				return fmt.Errorf("%s: %v", en.name, err)
			}
			if !vout.Equal(ref) {
				return fmt.Errorf("%s: result diverges from the reference concatenation", en.name)
			}
			fmt.Fprintf(w, "  %-12s C1=%4d  C2=%8d  model(SP-1)=%v\n",
				en.name, res.C1, res.C2, costmodel.Duration(costmodel.SP1.Time(res.C1, res.C2)))
			sched.AddRow(en.name, fmt.Sprint(res.C1), fmt.Sprint(res.C2),
				fmt.Sprint(costmodel.Duration(costmodel.SP1.Time(res.C1, res.C2))))
		}
		fmt.Fprintf(w, "  auto dispatch picked: %s (%d rounds)\n", auto.Algorithm(), auto.Rounds())
		fmt.Fprintln(w, "  all results byte-identical to the reference concatenation: ok")
		kv.Add("auto_pick", auto.Algorithm())
		kv.Add("byte_identical", true)
		rp.add(kv)
		rp.add(sched)
		return nil

	default:
		return fmt.Errorf("unknown operation %q", p.op)
	}
}

// parseSegments parses the -segments flag: empty means monolithic,
// "auto" defers to the plan compiler's cost-model pick, and a literal
// count pipelines over that many segments (the compiler clamps it to
// the block size and the round count).
func parseSegments(s string) (int, error) {
	switch s {
	case "":
		return 0, nil
	case "auto":
		return collective.AutoSegments, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("bad segments %q: want a count >= 1 or 'auto'", s)
	}
	return v, nil
}

// runSegmentCrossover is the bandwidth-vs-latency crossover study:
// pipelining trades S-1 extra merged rounds (latency) for smaller
// per-round messages (bandwidth), so the segmented index schedule loses
// on small blocks and overtakes the monolithic one past some block
// size. The study sweeps block sizes through the sweep harness's
// measured round structure, tabulates both model times, and reports the
// crossover block size.
func runSegmentCrossover(rp *reporter, p params) error {
	w := rp.text()
	if p.op != "index" {
		return fmt.Errorf("-crossover-segments studies the index collective, got -op %s", p.op)
	}
	r := p.k + 1
	switch p.radix {
	case "":
	case "auto":
		return fmt.Errorf("-crossover-segments needs a fixed radix: 'auto' would change the round structure per block size")
	default:
		v, err := strconv.Atoi(p.radix)
		if err != nil {
			return fmt.Errorf("bad radix %q: %v", p.radix, err)
		}
		r = v
	}
	autoSeg := p.segments == "" || p.segments == "auto"
	fixed := 0
	if !autoSeg {
		v, err := strconv.Atoi(p.segments)
		if err != nil || v < 2 {
			return fmt.Errorf("bad segments %q: the crossover study wants a count >= 2 or 'auto'", p.segments)
		}
		fixed = v
	}
	h := sweep.NewHarness(costmodel.SP1)
	tr := p.transport
	switch tr {
	case "", "chan":
		tr = "chan"
	case "slot":
		h.Backend = mpsim.BackendSlot
	default:
		return fmt.Errorf("-crossover-segments supports the chan and slot transports, got %q", p.transport)
	}

	maxB := 64 << 10
	if p.b > maxB {
		maxB = p.b
	}
	segName := "segmented(auto)"
	if !autoSeg {
		segName = fmt.Sprintf("segmented(s=%d)", fixed)
	}
	mono := sweep.Series{Name: "monolithic"}
	seg := sweep.Series{Name: segName}
	st := &cli.Table{Name: "segment-crossover", Columns: []string{
		"b", "segments", "mono_c1", "mono_c2", "seg_c1", "seg_c2", "speedup",
	}}
	crossover := -1
	// Start at b = 2: a 1-byte block cannot be split, so both schedules
	// are identical there and would register a vacuous crossover.
	for b := 2; b <= maxB; b *= 2 {
		mp, err := h.SegmentedPoint(p.n, r, p.k, b, 1)
		if err != nil {
			return err
		}
		s := fixed
		if autoSeg {
			s = collective.OptimalSegments(costmodel.SP1, p.n, b, r, p.k)
		}
		sp, err := h.SegmentedPoint(p.n, r, p.k, b, s)
		if err != nil {
			return err
		}
		// Under auto the model falls back to s = 1 while pipelining
		// loses, so "first size with s > 1 and a strict win" marks the
		// crossover; the fixed arm uses the series comparison below.
		if autoSeg && crossover < 0 && s > 1 && sp.Seconds < mp.Seconds {
			crossover = b
		}
		mono.Points = append(mono.Points, mp)
		seg.Points = append(seg.Points, sp)
		speedup := math.Inf(1)
		if sp.Seconds > 0 {
			speedup = mp.Seconds / sp.Seconds
		}
		st.AddRow(fmt.Sprint(b), fmt.Sprint(s), fmt.Sprint(mp.C1), fmt.Sprint(mp.C2),
			fmt.Sprint(sp.C1), fmt.Sprint(sp.C2), fmt.Sprintf("%.3f", speedup))
	}
	if !autoSeg {
		x, err := sweep.Crossover(mono, seg)
		if err != nil {
			return err
		}
		crossover = x
	}

	fmt.Fprintf(w, "segment crossover study: n=%d k=%d r=%d segments=%s transport=%s (SP-1 linear model)\n",
		p.n, p.k, r, segName, tr)
	fmt.Fprint(w, sweep.RenderSeries([]sweep.Series{mono, seg}))
	if crossover >= 0 {
		fmt.Fprintf(w, "crossover: segmented schedule wins from b = %d bytes\n", crossover)
	} else {
		fmt.Fprintf(w, "crossover: segmented schedule never overtakes the monolithic one up to b = %d\n", maxB)
	}

	kv := cli.KV("segment-crossover")
	kv.Add("n", p.n)
	kv.Add("k", p.k)
	kv.Add("radix", r)
	kv.Add("segments", segName)
	kv.Add("max_b", maxB)
	kv.Add("crossover_b", crossover)
	rp.add(kv)
	rp.add(st)
	rp.add(sweep.SeriesReport("segment-model-times", []sweep.Series{mono, seg}, "b"))
	return nil
}

// fillPatternBytes writes the deterministic study pattern into a slab.
func fillPatternBytes(data []byte) {
	for i := range data {
		data[i] = byte(i*11 + 5)
	}
}

// parseKernel parses the -kernel flag's op:type form.
func parseKernel(s string) (buffers.ReduceOp, buffers.DataType, error) {
	op, typ, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad kernel %q, want op:type (e.g. sum:float32)", s)
	}
	var rop buffers.ReduceOp
	switch op {
	case "sum":
		rop = buffers.Sum
	case "min":
		rop = buffers.Min
	case "max":
		rop = buffers.Max
	default:
		return 0, 0, fmt.Errorf("unknown reduce op %q", op)
	}
	var rtyp buffers.DataType
	switch typ {
	case "int32":
		rtyp = buffers.Int32
	case "int64":
		rtyp = buffers.Int64
	case "float32":
		rtyp = buffers.Float32
	case "float64":
		rtyp = buffers.Float64
	default:
		return 0, 0, fmt.Errorf("unknown element type %q", typ)
	}
	return rop, rtyp, nil
}

// fillElements writes deterministic small integer-valued elements of
// the given type — exactly representable in every type, so the
// simulated reduction is bit-checkable against the serial reference
// regardless of combine order.
func fillElements(data []byte, typ buffers.DataType, seed int) {
	for e := 0; e < len(data)/typ.Size(); e++ {
		v := (seed+e*7)%16 - 8
		switch typ {
		case buffers.Int32:
			buffers.PutInt32s(data[e*4:], []int32{int32(v)})
		case buffers.Int64:
			buffers.PutInt64s(data[e*8:], []int64{int64(v)})
		case buffers.Float32:
			buffers.PutFloat32s(data[e*4:], []float32{float32(v)})
		case buffers.Float64:
			buffers.PutFloat64s(data[e*8:], []float64{float64(v)})
		}
	}
}

// runReduce runs a reduction collective, verifies it against the
// locally computed serial reduce, and reports the schedule against the
// reduction lower bounds.
func runReduce(rp *reporter, p params, e *mpsim.Engine, g *mpsim.Group) error {
	w := rp.text()
	rop, rtyp, err := parseKernel(p.kernel)
	if err != nil {
		return err
	}
	fn, err := buffers.Kernel(rop, rtyp)
	if err != nil {
		return err
	}
	kind := collective.ReduceScatterKind
	if p.op == "allreduce" {
		kind = collective.AllReduceKind
	}
	opt := collective.ReduceOptions{
		Kernel:    fn,
		ElemSize:  rtyp.Size(),
		KernelKey: rop.String() + "/" + rtyp.String(),
	}
	auto := false
	switch p.alg {
	case "", "ring":
		opt.Algorithm = collective.ReduceRing
	case "halving":
		opt.Algorithm = collective.ReduceHalving
	case "bruck":
		opt.Algorithm = collective.ReduceBruck
		if p.radix != "" {
			r, err := strconv.Atoi(p.radix)
			if err != nil {
				return fmt.Errorf("bad radix %q: %v", p.radix, err)
			}
			opt.Radix = r
		}
	case "auto":
		auto = true
	default:
		return fmt.Errorf("unknown reduce algorithm %q", p.alg)
	}
	seg, err := parseSegments(p.segments)
	if err != nil {
		return err
	}
	opt.Segments = seg

	cache := collective.NewPlanCache()
	var plan *collective.Plan
	if auto {
		plan, err = cache.AutoReducePlan(e, g, kind, p.b, opt, costmodel.SP1)
	} else {
		plan, err = collective.CompileReduce(e, g, kind, p.b, opt)
	}
	if err != nil {
		return err
	}

	in, err := buffers.New(p.n, p.n, p.b)
	if err != nil {
		return err
	}
	fillElements(in.Bytes(), rtyp, 5)
	outBlocks := 1
	if kind == collective.AllReduceKind {
		outBlocks = p.n
	}
	out, err := buffers.New(p.n, outBlocks, p.b)
	if err != nil {
		return err
	}
	res, err := plan.Execute(in, out)
	if err != nil {
		return err
	}

	// Serial reference: chunk j combined in rank order.
	for j := 0; j < p.n; j++ {
		want := append([]byte(nil), in.Block(0, j)...)
		for q := 1; q < p.n; q++ {
			if p.b > 0 {
				fn(want, in.Block(q, j))
			}
		}
		rows := []int{j}
		if kind == collective.AllReduceKind {
			rows = make([]int, p.n)
			for i := range rows {
				rows[i] = i
			}
		}
		for _, i := range rows {
			blk := out.Block(i, 0)
			if kind == collective.AllReduceKind {
				blk = out.Block(i, j)
			}
			if !bytes.Equal(blk, want) {
				return fmt.Errorf("chunk %d on rank %d diverges from the serial reduce", j, i)
			}
		}
	}

	if auto {
		fmt.Fprintf(w, "auto dispatch picked: %s\n", plan.Algorithm())
	}
	c1lb, c2lb := lowerbound.ReduceScatterRounds(p.n, p.k), lowerbound.ReduceScatterVolume(p.n, p.b, p.k)
	if kind == collective.AllReduceKind {
		c1lb, c2lb = lowerbound.AllReduceRounds(p.n, p.k), lowerbound.AllReduceVolume(p.n, p.b, p.k)
	}
	fmt.Fprintf(w, "%s: n=%d k=%d b=%d alg=%s kernel=%s transport=%s\n",
		p.op, p.n, p.k, p.b, plan.Algorithm(), p.kernel, e.Transport())
	fmt.Fprintf(w, "  C1 = %d rounds   (lower bound %d)\n", res.C1, c1lb)
	fmt.Fprintf(w, "  C2 = %d bytes    (lower bound %d)\n", res.C2, c2lb)
	fmt.Fprintf(w, "  total traffic = %d bytes in %d messages\n", res.TotalBytes, res.Messages)
	fmt.Fprintf(w, "  model time (SP-1 linear):    %v\n", costmodel.Duration(costmodel.SP1.Time(res.C1, res.C2)))
	fmt.Fprintf(w, "  model time (SP-1 extended):  %v\n", costmodel.Duration(costmodel.SP1Measured.Time(res.C1, res.C2)))
	fmt.Fprintln(w, "  result byte-identical to the serial reference reduce: ok")

	kv := cli.KV("reduce")
	kv.Add("op", p.op)
	kv.Add("n", p.n)
	kv.Add("k", p.k)
	kv.Add("b", p.b)
	kv.Add("alg", plan.Algorithm())
	if auto {
		kv.Add("auto_pick", plan.Algorithm())
	}
	kv.Add("kernel", p.kernel)
	kv.Add("transport", e.Transport())
	kv.Add("c1", res.C1)
	kv.Add("c1_lower_bound", c1lb)
	kv.Add("c2", res.C2)
	kv.Add("c2_lower_bound", c2lb)
	kv.Add("total_bytes", res.TotalBytes)
	kv.Add("messages", res.Messages)
	kv.Add("verified_serial_reference", true)
	rp.add(kv)
	return nil
}
