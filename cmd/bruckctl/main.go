// Command bruckctl is the repo's single CLI: every tool that used to be
// a free-standing binary is a subcommand sharing one flag vocabulary
// (internal/cli) and one table/CSV/JSON renderer.
//
//	bruckctl run     -op index -n 64 -b 128 -radix 8      # one collective, measured
//	bruckctl index   -fig 4|5|6 | -tune | -allocs         # Section 3.5 index figures
//	bruckctl concat  -bounds | -optimality | -baselines   # Sections 2/4 concat tables
//	bruckctl figures -fig 1|2|3|7|8|9 | -table 1 | -all   # structural figures, byte-verified
//	bruckctl trace   record|verify [-perturb]             # golden schedule corpus
//	bruckctl vet     [-perturb]                           # static plan/artifact verification
//	bruckctl bench   [-short] [-out dir]                  # perf snapshot -> BENCH_<area>.json
//	bruckctl compare old.json new.json                    # regression gate between snapshots
//
// Every subcommand accepts -report-json for a machine-readable report
// built from the same values as the text output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// command is one bruckctl subcommand: its flag set (registered up
// front, so the canonical-vocabulary test can audit it without running
// anything) and its entry point.
type command struct {
	name    string
	summary string
	fs      *flag.FlagSet
	exec    func(args []string, w io.Writer) error
}

// newFlagSet returns a subcommand flag set with the shared error mode.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet("bruckctl "+name, flag.ContinueOnError)
	fs.SetOutput(io.Discard) // errors surface through the returned error
	return fs
}

// newCommands builds the full subcommand registry. Each invocation
// constructs fresh commands, so flag state never leaks between calls.
func newCommands() []*command {
	return []*command{
		newRunCmd(),
		newIndexCmd(),
		newConcatCmd(),
		newFiguresCmd(),
		newTraceCmd(),
		newVetCmd(),
		newBenchCmd(),
		newCompareCmd(),
	}
}

// dispatch resolves args[0] to a subcommand and runs it.
func dispatch(args []string, w io.Writer) error {
	if len(args) == 0 {
		return usageError(w)
	}
	name := args[0]
	if name == "help" || name == "-h" || name == "-help" || name == "--help" {
		printUsage(w)
		return nil
	}
	for _, c := range newCommands() {
		if c.name == name {
			return c.exec(args[1:], w)
		}
	}
	return usageError(w)
}

func usageError(w io.Writer) error {
	printUsage(w)
	return fmt.Errorf("usage: bruckctl <subcommand> [flags]")
}

func printUsage(w io.Writer) {
	fmt.Fprintln(w, "bruckctl — multiport collective tools (Bruck et al., SPAA 1994)")
	fmt.Fprintln(w, "\nsubcommands:")
	cmds := newCommands()
	sort.Slice(cmds, func(i, j int) bool { return cmds[i].name < cmds[j].name })
	for _, c := range cmds {
		fmt.Fprintf(w, "  %-8s %s\n", c.name, c.summary)
	}
	fmt.Fprintln(w, "\nrun 'bruckctl <subcommand> -h' for flags; every subcommand accepts -report-json")
}

func main() {
	if err := dispatch(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bruckctl:", err)
		os.Exit(1)
	}
}
