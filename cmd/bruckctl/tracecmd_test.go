package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRecordVerifyRoundTrip: record into a temp dir, then verify
// against it on chan, slot and chaos — all must pass, and -perturb must
// turn every pass into a detected failure.
func TestRecordVerifyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := traceRun([]string{"record", "-dir", dir}, &out); err != nil {
		t.Fatalf("record: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "recorded") {
		t.Fatalf("record printed nothing useful:\n%s", out.String())
	}

	for _, args := range [][]string{
		{"verify", "-dir", dir},
		{"verify", "-dir", dir, "-transport", "slot"},
		{"verify", "-dir", dir, "-transport", "chaos", "-chaos-inner", "slot", "-chaos-seed", "7", "-stragglers", "0,2"},
	} {
		out.Reset()
		if err := traceRun(args, &out); err != nil {
			t.Errorf("%v: %v\n%s", args, err, out.String())
		}
		if strings.Contains(out.String(), "FAIL") {
			t.Errorf("%v reported failures:\n%s", args, out.String())
		}
	}

	// The negative self-test: perturbed schedules must all fail.
	out.Reset()
	if err := traceRun([]string{"verify", "-dir", dir, "-perturb"}, &out); err != nil {
		t.Errorf("verify -perturb: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "perturbation detected") {
		t.Errorf("verify -perturb did not report detections:\n%s", out.String())
	}
}

// TestVerifyFailsOnDrift: verifying against goldens recorded for a
// different schedule shape must fail.
func TestVerifyFailsOnDrift(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	// Record only the bruck index cases, then doctor one artifact by
	// re-recording a different case over it is complex; instead verify
	// against an empty dir and expect a hard error.
	if err := traceRun([]string{"verify", "-dir", dir}, &out); err == nil {
		t.Error("verify against an empty golden dir succeeded")
	}
}

// TestBadFlags covers the flag validation paths.
func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"verify", "-transport", "bogus"},
		{"verify", "-transport", "chan", "-stragglers", "1"},
		{"verify", "-transport", "chaos", "-chaos-inner", "chaos"},
		{"verify", "-case", "no-such-case-name"},
	} {
		if err := traceRun(args, &out); err == nil {
			t.Errorf("traceRun(%v) succeeded, want error", args)
		}
	}
}
