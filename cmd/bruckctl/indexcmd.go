// The index subcommand regenerates the SP-1 implementation study of
// Section 3.5: the measured-time figures of the index algorithm (the
// old cmd/indexbench).
//
//	bruckctl index -fig 4        # time vs message size, power-of-two radices
//	bruckctl index -fig 5        # r=2 vs r=n vs tuned radix, with crossover
//	bruckctl index -fig 6        # time vs radix for several message sizes
//	bruckctl index -tune         # optimal radix per message size
//	bruckctl index -allocs       # legacy vs flat-buffer allocations per op
//	bruckctl index -allocs -transport slot   # ... on the slot transport
//
// Schedules are measured on the simulator (per-round message sizes of
// the real algorithm); times are evaluated under the linear model
// T = C1*beta + C2*tau with the SP-1 parameters (beta ~ 29us,
// tau ~ 0.118us/byte). Use -csv for CSV output or -report-json for the
// JSON report.
package main

import (
	"fmt"
	"io"

	"bruck/internal/cli"
	"bruck/internal/collective"
	"bruck/internal/costmodel"
	"bruck/internal/mpsim"
	"bruck/internal/sweep"
)

type indexParams struct {
	fig        int
	tune       bool
	allocs     bool
	n          int
	k          int
	csv        bool
	reportJSON bool
	transport  string
}

func newIndexCmd() *command {
	fs := newFlagSet("index")
	var p indexParams
	fs.IntVar(&p.fig, cli.FlagFig, 0, "figure to regenerate (4, 5, 6)")
	fs.BoolVar(&p.tune, "tune", false, "print the optimal radix per message size")
	fs.BoolVar(&p.allocs, "allocs", false, "compare legacy vs flat-buffer allocations per operation")
	fs.IntVar(&p.n, cli.FlagN, 64, "number of processors")
	fs.IntVar(&p.k, cli.FlagPorts, 1, "ports per processor (figures use the one-port model)")
	fs.BoolVar(&p.csv, cli.FlagCSV, false, "emit CSV instead of an aligned table")
	fs.StringVar(&p.transport, cli.FlagTransport, "chan", "simulator transport backend: chan or slot")
	fs.BoolVar(&p.reportJSON, cli.FlagReportJSON, false, "emit the JSON report instead of text")
	c := &command{name: "index", summary: "Section 3.5 index study: figures 4-6, radix tuning, allocations", fs: fs}
	c.exec = func(args []string, w io.Writer) error {
		if err := fs.Parse(args); err != nil {
			return err
		}
		return runIndexStudy(w, p)
	}
	return c
}

func runIndexStudy(w io.Writer, p indexParams) error {
	backend, err := mpsim.ParseBackend(p.transport)
	if err != nil {
		return err
	}
	if _, err := cli.PickFormat(p.csv, p.reportJSON); err != nil {
		return err
	}
	rp := newReporter(w, p.reportJSON)
	h := sweep.NewHarness(costmodel.SP1)
	h.Backend = backend
	switch {
	case p.fig == 4:
		err = runFig4(rp, h, p.n, p.csv)
	case p.fig == 5:
		err = runFig5(rp, h, p.n, p.csv)
	case p.fig == 6:
		err = runFig6(rp, h, p.n, p.csv)
	case p.fig != 0:
		return fmt.Errorf("unknown index figure %d (have 4, 5, 6)", p.fig)
	case p.tune:
		err = runTune(rp, p.n, p.k)
	case p.allocs:
		err = runIndexAllocs(rp, backend, p.n, p.k)
	default:
		return fmt.Errorf("pick one of -fig 4|5|6, -tune or -allocs")
	}
	if err != nil {
		return err
	}
	return rp.flush()
}

func runFig4(rp *reporter, h *sweep.Harness, n int, csv bool) error {
	w := rp.text()
	sizes := []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	series, err := h.Fig4(n, sweep.PowersOfTwoUpTo(n), sizes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 4: index time vs message size, n = %d, k = 1, SP-1 linear model\n\n", n)
	emitSeries(w, series, "bytes", csv)
	best := sweep.BestRadixPerSize(series)
	fmt.Fprintf(w, "\nbest radix per size: %v\n", best)
	rp.add(sweep.SeriesReport("fig4", series, "bytes"))
	kv := cli.KV("fig4-summary")
	kv.Add("n", n)
	kv.Add("best_radix_per_size", best)
	rp.add(kv)
	return nil
}

func runFig5(rp *reporter, h *sweep.Harness, n int, csv bool) error {
	w := rp.text()
	sizes := make([]int, 0, 1024)
	for b := 1; b <= 1024; b++ {
		sizes = append(sizes, b)
	}
	series, err := h.Fig5(n, sizes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 5: r=2 vs r=n=%d vs tuned power-of-two radix, SP-1 linear model\n\n", n)
	if csv {
		fmt.Fprint(w, sweep.CSV(series, "bytes"))
	} else {
		// Print a decimated view plus the crossover.
		var view []sweep.Series
		for _, s := range series {
			dec := sweep.Series{Name: s.Name}
			for i := 0; i < len(s.Points); i += 64 {
				dec.Points = append(dec.Points, s.Points[i])
			}
			view = append(view, dec)
		}
		fmt.Fprint(w, sweep.RenderSeries(view))
	}
	cross, err := sweep.Crossover(series[0], series[1])
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nbreak-even point of r=2 vs r=n: %d bytes (paper reports 100-200 bytes)\n", cross)
	rp.add(sweep.SeriesReport("fig5", series, "bytes"))
	kv := cli.KV("fig5-summary")
	kv.Add("n", n)
	kv.Add("crossover_bytes", cross)
	rp.add(kv)
	return nil
}

func runFig6(rp *reporter, h *sweep.Harness, n int, csv bool) error {
	w := rp.text()
	radices := make([]int, 0, n-1)
	for r := 2; r <= n; r++ {
		radices = append(radices, r)
	}
	series, err := h.Fig6(n, []int{32, 64, 128}, radices)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 6: index time vs radix for 32, 64, 128-byte messages, n = %d, SP-1 linear model\n\n", n)
	if csv {
		fmt.Fprint(w, sweep.CSV(series, "radix"))
	} else {
		fmt.Fprint(w, sweep.RenderSeriesByR(series))
	}
	rp.add(sweep.SeriesReport("fig6", series, "radix"))
	return nil
}

func runTune(rp *reporter, n, k int) error {
	w := rp.text()
	fmt.Fprintf(w, "optimal radix per message size, n = %d, k = %d, SP-1 linear model\n\n", n, k)
	fmt.Fprintf(w, "%10s %12s %12s %16s %10s %12s\n", "bytes", "r (any)", "r (pow2)", "mixed vector", "C1", "C2")
	t := &cli.Table{Name: "tune", Columns: []string{"bytes", "r_any", "r_pow2", "mixed_vector", "c1", "c2"}}
	for b := 1; b <= 8192; b *= 2 {
		rAll := collective.OptimalRadix(costmodel.SP1, n, b, k, false)
		rP2 := collective.OptimalRadix(costmodel.SP1, n, b, k, true)
		mixed := collective.OptimalRadixSchedule(costmodel.SP1, n, b, k)
		c1, c2 := collective.IndexMixedCost(n, b, mixed, k)
		fmt.Fprintf(w, "%10d %12d %12d %16v %10d %12d\n", b, rAll, rP2, mixed, c1, c2)
		t.AddRow(fmt.Sprint(b), fmt.Sprint(rAll), fmt.Sprint(rP2), fmt.Sprint(mixed), fmt.Sprint(c1), fmt.Sprint(c2))
	}
	rp.add(t)
	return nil
}

func runIndexAllocs(rp *reporter, backend mpsim.Backend, n, k int) error {
	w := rp.text()
	fmt.Fprintf(w, "index allocations per operation, legacy (block matrix) vs flat (zero-copy) vs compiled plan, n = %d, k = %d, transport = %s\n\n", n, k, backend)
	fmt.Fprintf(w, "%6s %8s %14s %14s %14s %12s\n", "r", "bytes", "legacy", "flat", "plan", "reduction")
	t := &cli.Table{Name: "index-allocs", Columns: []string{"r", "bytes", "legacy", "flat", "plan", "reduction_pct"}}
	for _, r := range []int{2, 8, n} {
		for _, b := range []int{16, 128, 1024} {
			legacy, flat, planned, err := sweep.IndexAllocs(backend, n, b, r, k, 10)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%6d %8d %14.0f %14.0f %14.0f %11.0f%%\n", r, b, legacy, flat, planned, 100*(1-planned/legacy))
			t.AddRow(fmt.Sprint(r), fmt.Sprint(b), fmt.Sprintf("%.0f", legacy), fmt.Sprintf("%.0f", flat),
				fmt.Sprintf("%.0f", planned), fmt.Sprintf("%.0f", 100*(1-planned/legacy)))
		}
	}
	rp.add(t)
	return nil
}

func emitSeries(w io.Writer, series []sweep.Series, xAxis string, csv bool) {
	if csv {
		fmt.Fprint(w, sweep.CSV(series, xAxis))
	} else {
		fmt.Fprint(w, sweep.RenderSeries(series))
	}
}
