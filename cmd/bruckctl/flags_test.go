package main

import (
	"flag"
	"reflect"
	"sort"
	"testing"
)

// TestCanonicalFlagVocabulary pins each subcommand's registered flag
// set. The old free-standing tools drifted (-r vs -radix, two
// incompatible -fig vocabularies); any flag added, renamed or dropped
// must update this table deliberately.
func TestCanonicalFlagVocabulary(t *testing.T) {
	want := map[string][]string{
		"run": {"alg", "b", "chaos-inner", "chaos-seed", "crossover-segments", "crossover-topology",
			"flat", "k", "kernel", "n", "op", "r", "radix", "ragged", "repeat", "report-json",
			"segments", "stragglers", "topology", "transport"},
		"index":   {"allocs", "csv", "fig", "k", "n", "report-json", "transport", "tune"},
		"concat":  {"allocs", "b", "baselines", "bounds", "optimality", "report-json", "transport"},
		"figures": {"all", "fig", "n", "r", "radix", "report-json", "table", "transport"},
		"trace": {"case", "chaos-inner", "chaos-seed", "dir", "perturb", "report-json",
			"stragglers", "transport"},
		"vet":     {"case", "dir", "perturb", "report-json"},
		"bench":   {"area", "case", "out", "report-json", "short"},
		"compare": {"alloc-threshold", "bytes-threshold", "ns-threshold", "report-json", "selftest"},
	}
	cmds := newCommands()
	if len(cmds) != len(want) {
		t.Fatalf("registry has %d subcommands, table has %d", len(cmds), len(want))
	}
	for _, c := range cmds {
		var got []string
		c.fs.VisitAll(func(f *flag.Flag) { got = append(got, f.Name) })
		sort.Strings(got)
		if !reflect.DeepEqual(got, want[c.name]) {
			t.Errorf("%s flags = %v, want %v", c.name, got, want[c.name])
		}
	}
}

// TestRadixAliasParity: -r and -radix write the same value on every
// subcommand that accepts a radix.
func TestRadixAliasParity(t *testing.T) {
	for _, args := range [][]string{
		{"-radix", "4"},
		{"-r", "4"},
	} {
		fs := newFlagSet("figures")
		var p figuresParams
		fs.IntVar(&p.r, "radix", 2, "")
		fs.IntVar(&p.r, "r", 2, "")
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if p.r != 4 {
			t.Errorf("parse(%v): radix = %d, want 4", args, p.r)
		}
	}
}
