package main

import (
	"io"

	"bruck/internal/cli"
)

// reporter routes one subcommand invocation's output: the historic
// free-form text goes to text() (silenced under -report-json), and the
// same values accumulate as cli tables that flush as one JSON document
// when -report-json is set. Both forms are fed from the same computed
// values, so they cannot drift.
type reporter struct {
	w      io.Writer
	json   bool
	tables []*cli.Table
}

func newReporter(w io.Writer, json bool) *reporter {
	return &reporter{w: w, json: json}
}

// text returns the writer for the historic text output: the real
// writer normally, a discard sink under -report-json.
func (r *reporter) text() io.Writer {
	if r.json {
		return io.Discard
	}
	return r.w
}

// add queues a table for the JSON report. Cheap no-op collection in
// text mode is deliberate: paths build their tables unconditionally so
// both forms come from identical values.
func (r *reporter) add(t *cli.Table) {
	r.tables = append(r.tables, t)
}

// flush emits the queued tables as one JSON document under
// -report-json; in text mode it does nothing (the text already went to
// the writer).
func (r *reporter) flush() error {
	if !r.json || len(r.tables) == 0 {
		return nil
	}
	return cli.RenderTables(r.w, cli.FormatJSON, r.tables...)
}
