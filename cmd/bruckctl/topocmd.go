// Topology studies of the run subcommand: -topology executes the
// two-level hierarchical schedule of one collective on a machine with
// per-link-class cost profiles and verifies it, and
// -crossover-topology sweeps (n, b, inter/intra ratio) to tabulate
// where the hierarchical composition overtakes the best flat schedule
// under the topology clock.
//
//	bruckctl run -op index     -topology 4x4 -b 64
//	bruckctl run -op concat    -topology 4,4,3 -b 16
//	bruckctl run -op allreduce -topology 4x4:29e-6,0.117e-6/29e-5,0.117e-5 -b 64
//	bruckctl run -op index -crossover-topology
package main

import (
	"bytes"
	"fmt"

	"bruck/internal/buffers"
	"bruck/internal/cli"
	"bruck/internal/collective"
	"bruck/internal/costmodel"
	"bruck/internal/mpsim"
	"bruck/internal/sweep"
)

// topoFlatBest compiles the best flat arm of one operation under the
// topology clock: the Bruck index over the power-of-two radices plus
// k+1 and n for the index, the circulant schedule for the
// concatenation, and the ring/halving/Bruck trio for the allreduce.
func topoFlatBest(e *mpsim.Engine, g *mpsim.Group, op string, b int, topo *costmodel.Topology, ropt collective.ReduceOptions) (*collective.Plan, error) {
	n, k := g.Size(), e.Ports()
	var best *collective.Plan
	consider := func(pl *collective.Plan, err error) error {
		if err != nil {
			return err
		}
		if best == nil || pl.TimeTopo(topo) < best.TimeTopo(topo) {
			best = pl
		}
		return nil
	}
	switch op {
	case "index":
		arms := append(sweep.PowersOfTwoUpTo(n), k+1, n)
		seen := map[int]bool{}
		for _, r := range arms {
			if r < 2 {
				r = 2
			}
			if r > n || seen[r] {
				continue
			}
			seen[r] = true
			err := consider(collective.CompileIndex(e, g, b, collective.IndexOptions{
				Algorithm: collective.IndexBruck, Radix: r,
			}))
			if err != nil {
				return nil, err
			}
		}
	case "concat":
		if err := consider(collective.CompileConcat(e, g, b, collective.ConcatOptions{
			Algorithm: collective.ConcatCirculant,
		})); err != nil {
			return nil, err
		}
	case "allreduce":
		for _, alg := range []collective.ReduceAlgorithm{collective.ReduceRing, collective.ReduceBruck} {
			o := ropt
			o.Algorithm = alg
			if err := consider(collective.CompileReduce(e, g, collective.AllReduceKind, b, o)); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("-topology supports index, concat and allreduce, got -op %s", op)
	}
	return best, nil
}

// runTopology executes one collective hierarchically on the machine
// the -topology spec describes, verifies the result, and reports the
// per-phase and per-level schedule against the best flat arm.
func runTopology(rp *reporter, p params) error {
	w := rp.text()
	topo, err := costmodel.ParseTopology(p.topology)
	if err != nil {
		return err
	}
	n, k, b := topo.N(), p.k, p.b
	tfl := cli.TransportFlags{Transport: p.transport, ChaosInner: p.chaosInner, ChaosSeed: p.chaosSeed, Stragglers: p.stragglers}
	if tfl.Transport == "" {
		tfl.Transport = "chan"
	}
	if tfl.ChaosInner == "" {
		tfl.ChaosInner = "chan"
	}
	topts, err := tfl.EngineOptions()
	if err != nil {
		return err
	}
	eopts := append([]mpsim.Option{mpsim.Ports(k), mpsim.Record(true),
		mpsim.WithTopology(topo.GroupAssignment())}, topts...)
	e, err := mpsim.New(n, eopts...)
	if err != nil {
		return err
	}
	g := mpsim.WorldGroup(n)

	ropt := collective.ReduceOptions{}
	var rtyp buffers.DataType
	if p.op == "allreduce" {
		var rop buffers.ReduceOp
		var kerr error
		rop, rtyp, kerr = parseKernel(p.kernel)
		if kerr != nil {
			return kerr
		}
		fn, kerr := buffers.Kernel(rop, rtyp)
		if kerr != nil {
			return kerr
		}
		ropt = collective.ReduceOptions{Kernel: fn, ElemSize: rtyp.Size(), KernelKey: rop.String() + "/" + rtyp.String()}
	}

	var hier *collective.Plan
	var in, out *buffers.Buffers
	verify := func(*buffers.Buffers) error { return nil }
	switch p.op {
	case "index":
		hier, err = collective.CompileHierarchicalIndex(e, g, b, topo, collective.HierOptions{})
		if err != nil {
			return err
		}
		in, _ = buffers.New(n, n, b)
		out, _ = buffers.New(n, n, b)
		fillPatternBytes(in.Bytes())
		verify = func(out *buffers.Buffers) error {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if !bytes.Equal(out.Block(i, j), in.Block(j, i)) {
						return fmt.Errorf("verify: out[%d][%d] != in[%d][%d]", i, j, j, i)
					}
				}
			}
			return nil
		}
	case "concat":
		hier, err = collective.CompileHierarchicalConcat(e, g, b, topo, collective.HierOptions{})
		if err != nil {
			return err
		}
		in, _ = buffers.New(n, 1, b)
		out, _ = buffers.New(n, n, b)
		fillPatternBytes(in.Bytes())
		verify = func(out *buffers.Buffers) error {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if !bytes.Equal(out.Block(i, j), in.Block(j, 0)) {
						return fmt.Errorf("verify: out[%d][%d] != in[%d]", i, j, j)
					}
				}
			}
			return nil
		}
	case "allreduce":
		hier, err = collective.CompileHierarchicalReduce(e, g, collective.AllReduceKind, b, topo, ropt)
		if err != nil {
			return err
		}
		in, _ = buffers.New(n, n, b)
		out, _ = buffers.New(n, n, b)
		fillElements(in.Bytes(), rtyp, 5)
		verify = func(out *buffers.Buffers) error {
			for j := 0; j < n; j++ {
				want := make([]byte, b)
				copy(want, in.Block(0, j))
				for q := 1; q < n; q++ {
					ropt.Kernel(want, in.Block(q, j))
				}
				for i := 0; i < n; i++ {
					if !bytes.Equal(out.Block(i, j), want) {
						return fmt.Errorf("verify: rank %d chunk %d mismatch", i, j)
					}
				}
			}
			return nil
		}
	default:
		return fmt.Errorf("-topology supports index, concat and allreduce, got -op %s", p.op)
	}

	res, err := hier.Execute(in, out)
	if err != nil {
		return err
	}
	if err := verify(out); err != nil {
		return err
	}

	flat, err := topoFlatBest(e, g, p.op, b, topo, ropt)
	if err != nil {
		return err
	}
	hierSec, flatSec := hier.TimeTopo(topo), flat.TimeTopo(topo)
	winner := "flat"
	if hierSec < flatSec {
		winner = "hier"
	}

	fmt.Fprintf(w, "hierarchical %s: n=%d k=%d b=%d topology=%s transport=%s\n",
		p.op, n, k, b, topo.Spec(), e.Transport())
	fmt.Fprintf(w, "  intra profile: %s   inter profile: %s\n", topo.Intra.Name, topo.Inter.Name)
	fmt.Fprintf(w, "  phases (name class first rounds c2):\n")
	pt := &cli.Table{Name: "topology-phases", Columns: []string{"name", "class", "first", "rounds", "c2"}}
	for _, ph := range hier.Phases() {
		class := costmodel.LinkClass(ph.Class).String()
		fmt.Fprintf(w, "    %-16s %-5s %4d %6d %8d\n", ph.Name, class, ph.First, ph.Rounds, ph.C2)
		pt.AddRow(ph.Name, class, fmt.Sprint(ph.First), fmt.Sprint(ph.Rounds), fmt.Sprint(ph.C2))
	}
	fmt.Fprintf(w, "  total:  C1 = %d rounds, C2 = %d bytes\n", res.C1, res.C2)
	if res.Intra != nil && res.Inter != nil {
		fmt.Fprintf(w, "  intra:  C1 = %d (bound %d), C2 = %d (bound %d)\n",
			res.Intra.C1, res.Intra.C1LowerBound, res.Intra.C2, res.Intra.C2LowerBound)
		fmt.Fprintf(w, "  inter:  C1 = %d (bound %d), C2 = %d (bound %d)\n",
			res.Inter.C1, res.Inter.C1LowerBound, res.Inter.C2, res.Inter.C2LowerBound)
	}
	fmt.Fprintf(w, "  model time hier (topology clock): %v\n", costmodel.Duration(hierSec))
	fmt.Fprintf(w, "  model time best flat [%s]:        %v\n", flat.Algorithm(), costmodel.Duration(flatSec))
	fmt.Fprintf(w, "  winner: %s\n", winner)
	if cp, err := costmodel.CriticalPathTopo(topo, n, e.Metrics().Events()); err == nil {
		fmt.Fprintf(w, "  critical path (topology clock):   %v\n", costmodel.Duration(cp))
	}

	kv := cli.KV("topology-run")
	kv.Add("op", p.op)
	kv.Add("n", n)
	kv.Add("k", k)
	kv.Add("b", b)
	kv.Add("topology", topo.Spec())
	kv.Add("transport", e.Transport())
	kv.Add("c1", res.C1)
	kv.Add("c2", res.C2)
	if res.Intra != nil && res.Inter != nil {
		kv.Add("intra_c1", res.Intra.C1)
		kv.Add("intra_c2", res.Intra.C2)
		kv.Add("intra_c1_lower_bound", res.Intra.C1LowerBound)
		kv.Add("intra_c2_lower_bound", res.Intra.C2LowerBound)
		kv.Add("inter_c1", res.Inter.C1)
		kv.Add("inter_c2", res.Inter.C2)
		kv.Add("inter_c1_lower_bound", res.Inter.C1LowerBound)
		kv.Add("inter_c2_lower_bound", res.Inter.C2LowerBound)
	}
	kv.Add("model_hier", costmodel.Duration(hierSec))
	kv.Add("model_flat_best", costmodel.Duration(flatSec))
	kv.Add("flat_alg", flat.Algorithm())
	kv.Add("winner", winner)
	rp.add(kv)
	rp.add(pt)
	return nil
}

// runTopoCrossover sweeps the flat-vs-hierarchical decision across
// machine sizes, block sizes and inter/intra cost ratios and reports
// where each shape wins, plus the per-(n, ratio) crossover block size.
func runTopoCrossover(rp *reporter, p params) error {
	w := rp.text()
	op := p.op
	if op != "index" && op != "concat" {
		return fmt.Errorf("-crossover-topology studies index and concat, got -op %s", op)
	}
	ns := []int{8, 16, 32, 64}
	sizes := []int{1, 16, 256, 4096}
	ratios := []float64{2, 5, 10, 20}
	rows, err := sweep.TopoCrossoverTable(op, ns, sizes, ratios, p.k, costmodel.SP1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "topology crossover study: op=%s k=%d groups=balanced(sqrt) intra=SP-1 (modeled, topology clock)\n", op, p.k)
	fmt.Fprint(w, sweep.RenderTopoRows(rows))
	st := &cli.Table{Name: "topology-crossover", Columns: []string{
		"op", "n", "k", "b", "shape", "ratio", "flat_c1", "flat_c2", "flat_r", "hier_c1", "hier_c2", "flat_us", "hier_us", "winner",
	}}
	for _, r := range rows {
		winner := "flat"
		if r.HierWins {
			winner = "hier"
		}
		st.AddRow(r.Op, fmt.Sprint(r.N), fmt.Sprint(r.K), fmt.Sprint(r.B), r.Shape,
			fmt.Sprintf("%g", r.Ratio), fmt.Sprint(r.FlatC1), fmt.Sprint(r.FlatC2),
			fmt.Sprint(r.FlatR), fmt.Sprint(r.HierC1), fmt.Sprint(r.HierC2),
			fmt.Sprintf("%.1f", r.FlatSec*1e6), fmt.Sprintf("%.1f", r.HierSec*1e6), winner)
	}
	ct := &cli.Table{Name: "topology-crossover-summary", Columns: []string{"n", "ratio", "flat_from_b"}}
	for _, c := range sweep.TopoCrossovers(rows) {
		if c.FlatFromB < 0 {
			fmt.Fprintf(w, "n=%-3d ratio=%-3g hierarchical wins across the whole sweep\n", c.N, c.Ratio)
		} else if c.FlatFromB == sizes[0] {
			fmt.Fprintf(w, "n=%-3d ratio=%-3g flat wins from b = %d (the smallest swept size)\n", c.N, c.Ratio, c.FlatFromB)
		} else {
			fmt.Fprintf(w, "n=%-3d ratio=%-3g hierarchical wins below b = %d, flat from there\n", c.N, c.Ratio, c.FlatFromB)
		}
		ct.AddRow(fmt.Sprint(c.N), fmt.Sprintf("%g", c.Ratio), fmt.Sprint(c.FlatFromB))
	}
	rp.add(st)
	rp.add(ct)
	return nil
}
