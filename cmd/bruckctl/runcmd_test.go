package main

import (
	"strings"
	"testing"
)

func TestRunIndexDefault(t *testing.T) {
	var sb strings.Builder
	if err := runOp(&sb, params{op: "index", n: 8, k: 1, b: 16}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"index: n=8", "C1 = 3 rounds", "lower bound 3", "model time"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunIndexAutoRadix(t *testing.T) {
	var sb strings.Builder
	if err := runOp(&sb, params{op: "index", n: 16, k: 1, b: 4096, radix: "auto"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "tuned radix:") {
		t.Errorf("missing tuned radix line:\n%s", sb.String())
	}
}

func TestRunConcatOptimal(t *testing.T) {
	var sb strings.Builder
	if err := runOp(&sb, params{op: "concat", n: 17, k: 2, b: 64}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "C1 = 3 rounds   (lower bound 3)") {
		t.Errorf("concat not round-optimal:\n%s", out)
	}
	if !strings.Contains(out, "C2 = 512 bytes    (lower bound 512)") {
		t.Errorf("concat not volume-optimal:\n%s", out)
	}
}

func TestRunAlgorithmVariants(t *testing.T) {
	for _, p := range []params{
		{op: "index", n: 8, k: 1, b: 8, alg: "direct"},
		{op: "index", n: 8, k: 1, b: 8, alg: "xor"},
		{op: "concat", n: 8, k: 1, b: 8, alg: "folklore"},
		{op: "concat", n: 8, k: 1, b: 8, alg: "ring"},
		{op: "concat", n: 8, k: 1, b: 8, alg: "recdbl"},
	} {
		var sb strings.Builder
		if err := runOp(&sb, p); err != nil {
			t.Errorf("%+v: %v", p, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := runOp(&sb, params{op: "nonsense", n: 4, k: 1, b: 8}); err == nil {
		t.Error("unknown op accepted")
	}
	if err := runOp(&sb, params{op: "index", n: 4, k: 1, b: 8, alg: "nonsense"}); err == nil {
		t.Error("unknown index alg accepted")
	}
	if err := runOp(&sb, params{op: "concat", n: 4, k: 1, b: 8, alg: "nonsense"}); err == nil {
		t.Error("unknown concat alg accepted")
	}
	if err := runOp(&sb, params{op: "index", n: 4, k: 1, b: 8, radix: "xyz"}); err == nil {
		t.Error("bad radix accepted")
	}
	if err := runOp(&sb, params{op: "index", n: 0, k: 1, b: 8}); err == nil {
		t.Error("n=0 accepted")
	}
	if err := runOp(&sb, params{op: "index", n: 4, k: 1, b: 8, transport: "pigeon"}); err == nil {
		t.Error("unknown transport accepted")
	}
}

func TestRunSlotTransport(t *testing.T) {
	for _, p := range []params{
		{op: "index", n: 8, k: 1, b: 16, transport: "slot"},
		{op: "index", n: 8, k: 1, b: 16, transport: "slot", flat: true},
		{op: "concat", n: 9, k: 2, b: 16, transport: "slot"},
	} {
		var sb strings.Builder
		if err := runOp(&sb, p); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if !strings.Contains(sb.String(), "transport=slot") {
			t.Errorf("%+v: output lacks transport=slot:\n%s", p, sb.String())
		}
	}
}

// TestRunRepeatMode: the plan-reuse study runs both modes, verifies
// byte-equivalence and prints the comparison, for both operations and
// both transports.
func TestRunRepeatMode(t *testing.T) {
	for _, p := range []params{
		{op: "index", n: 8, k: 1, b: 16, repeat: 3},
		{op: "index", n: 9, k: 2, b: 8, radix: "3", repeat: 3, transport: "slot"},
		{op: "concat", n: 8, k: 1, b: 16, repeat: 3},
		{op: "concat", n: 17, k: 2, b: 12, repeat: 3, transport: "slot"},
	} {
		var sb strings.Builder
		if err := runOp(&sb, p); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		out := sb.String()
		for _, want := range []string{
			"plan-reuse study", "compile-per-call:", "plan-reuse:",
			"results byte-identical across modes: ok",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("%+v: output lacks %q:\n%s", p, want, out)
			}
		}
	}
}

// TestRunRaggedStudy: the skewed-size study runs all candidate
// schedules, verifies them against the local reference, and reports the
// auto dispatch's pick, for both operations and transports.
func TestRunRaggedStudy(t *testing.T) {
	for _, p := range []params{
		{op: "index", n: 12, k: 1, b: 48, ragged: 1.2},
		{op: "index", n: 9, k: 2, b: 32, ragged: 2.0, transport: "slot"},
		{op: "concat", n: 11, k: 1, b: 40, ragged: 1.5},
		{op: "concat", n: 8, k: 3, b: 24, ragged: 0.7, transport: "slot"},
	} {
		var sb strings.Builder
		if err := runOp(&sb, p); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		out := sb.String()
		for _, want := range []string{
			"ragged " + p.op + " study", "C2 lower bound",
			"auto dispatch picked:", "byte-identical",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("%+v: output lacks %q:\n%s", p, want, out)
			}
		}
	}
}

// TestRunRaggedHeavySkewZeroBlocks: a steep skew produces zero-length
// blocks and the study must still verify.
func TestRunRaggedHeavySkewZeroBlocks(t *testing.T) {
	var sb strings.Builder
	if err := runOp(&sb, params{op: "index", n: 16, k: 1, b: 8, ragged: 3.0}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "zero-length blocks") || strings.Contains(out, "zero-length blocks 0,") {
		t.Errorf("steep skew should produce zero-length blocks:\n%s", out)
	}
	if !strings.Contains(out, "byte-identical") {
		t.Errorf("study did not verify:\n%s", out)
	}
}

// TestRunReduceOps: both reduction operations across algorithms,
// kernels and transports, each verified against the serial reference
// inside run.
func TestRunReduceOps(t *testing.T) {
	for _, p := range []params{
		{op: "reducescatter", n: 8, k: 1, b: 16, kernel: "sum:int32"},
		{op: "reducescatter", n: 8, k: 1, b: 16, alg: "halving", kernel: "min:float64"},
		{op: "reducescatter", n: 9, k: 2, b: 16, alg: "bruck", radix: "3", kernel: "max:int64", transport: "slot"},
		{op: "allreduce", n: 8, k: 1, b: 16, kernel: "sum:float32"},
		{op: "allreduce", n: 12, k: 2, b: 24, alg: "auto", kernel: "sum:int32", transport: "slot"},
	} {
		var sb strings.Builder
		if err := runOp(&sb, p); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		out := sb.String()
		for _, want := range []string{p.op + ":", "lower bound", "serial reference reduce: ok"} {
			if !strings.Contains(out, want) {
				t.Errorf("%+v: output lacks %q:\n%s", p, want, out)
			}
		}
	}
	var sb strings.Builder
	if err := runOp(&sb, params{op: "allreduce", n: 8, k: 1, b: 16, alg: "auto", kernel: "sum:int32"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "auto dispatch picked:") {
		t.Errorf("auto run lacks the dispatch line:\n%s", sb.String())
	}
}

// TestRunReduceErrors: kernel and algorithm parse failures.
func TestRunReduceErrors(t *testing.T) {
	var sb strings.Builder
	if err := runOp(&sb, params{op: "reducescatter", n: 4, k: 1, b: 16, kernel: "nonsense"}); err == nil {
		t.Error("bad kernel accepted")
	}
	if err := runOp(&sb, params{op: "reducescatter", n: 4, k: 1, b: 16, kernel: "sum:int13"}); err == nil {
		t.Error("bad element type accepted")
	}
	if err := runOp(&sb, params{op: "allreduce", n: 4, k: 1, b: 16, kernel: "sum:int32", alg: "nonsense"}); err == nil {
		t.Error("bad reduce algorithm accepted")
	}
	if err := runOp(&sb, params{op: "reducescatter", n: 6, k: 1, b: 16, kernel: "sum:int32", alg: "halving"}); err == nil {
		t.Error("halving on non-power-of-two accepted")
	}
	if err := runOp(&sb, params{op: "reducescatter", n: 4, k: 1, b: 10, kernel: "sum:int64"}); err == nil {
		t.Error("block size not divisible by element size accepted")
	}
}
