package main

import (
	"encoding/json"
	"strings"
	"testing"

	"bruck/internal/cli"
)

func TestDispatchHelpAndErrors(t *testing.T) {
	var sb strings.Builder
	if err := dispatch([]string{"help"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, c := range newCommands() {
		if !strings.Contains(sb.String(), c.name) {
			t.Errorf("usage lacks subcommand %q:\n%s", c.name, sb.String())
		}
	}
	if err := dispatch(nil, &sb); err == nil {
		t.Error("empty argv accepted")
	}
	if err := dispatch([]string{"frobnicate"}, &sb); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := dispatch([]string{"run", "-no-such-flag"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestDispatchRunTextMatchesDirectCall: the dispatcher is a thin shell
// over the same run functions the tests pin, with no extra output.
func TestDispatchRunTextMatchesDirectCall(t *testing.T) {
	var viaDispatch, direct strings.Builder
	if err := dispatch([]string{"run", "-op", "index", "-n", "8", "-b", "16"}, &viaDispatch); err != nil {
		t.Fatal(err)
	}
	if err := runOp(&direct, params{op: "index", n: 8, k: 1, b: 16, kernel: "sum:int32"}); err != nil {
		t.Fatal(err)
	}
	if viaDispatch.String() != direct.String() {
		t.Errorf("dispatch output diverges:\n%q\nvs\n%q", viaDispatch.String(), direct.String())
	}
}

// TestReportJSONWellFormed: -report-json yields a single JSON array of
// tables and suppresses the text form, on every subcommand that can run
// hermetically here.
func TestReportJSONWellFormed(t *testing.T) {
	for _, args := range [][]string{
		{"run", "-op", "index", "-n", "8", "-b", "16", "-report-json"},
		{"run", "-op", "allreduce", "-n", "8", "-b", "16", "-alg", "auto", "-report-json"},
		{"run", "-op", "index", "-n", "8", "-b", "16", "-repeat", "2", "-report-json"},
		{"run", "-op", "index", "-n", "8", "-b", "16", "-ragged", "1.2", "-report-json"},
		{"index", "-tune", "-n", "8", "-report-json"},
		{"concat", "-baselines", "-report-json"},
		{"figures", "-fig", "3", "-report-json"},
	} {
		var sb strings.Builder
		if err := dispatch(args, &sb); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		var tables []cli.Table
		if err := json.Unmarshal([]byte(sb.String()), &tables); err != nil {
			t.Fatalf("%v: not a JSON table array: %v\n%s", args, err, sb.String())
		}
		if len(tables) == 0 {
			t.Errorf("%v: empty report", args)
		}
		for _, tb := range tables {
			if tb.Name == "" || len(tb.Columns) == 0 {
				t.Errorf("%v: malformed table %+v", args, tb)
			}
		}
	}
}

// TestCSVAndReportJSONAreExclusive: the two machine formats cannot be
// combined.
func TestCSVAndReportJSONAreExclusive(t *testing.T) {
	var sb strings.Builder
	if err := dispatch([]string{"index", "-fig", "4", "-csv", "-report-json"}, &sb); err == nil {
		t.Error("-csv with -report-json accepted")
	}
}
