// The concat subcommand exercises the concatenation results of
// Sections 2 and 4: achieved-versus-lower-bound tables, the
// special-range policy trade-offs, and a baseline comparison (the old
// cmd/concatbench).
//
//	bruckctl concat -bounds            # achieved vs Section 2 lower bounds
//	bruckctl concat -optimality        # Theorem 4.3 across the special range
//	bruckctl concat -baselines         # circulant vs folklore/ring/recdbl
//	bruckctl concat -allocs            # legacy vs flat-buffer allocations
//	bruckctl concat -allocs -transport slot   # ... on the slot transport
package main

import (
	"fmt"
	"io"

	"bruck/internal/cli"
	"bruck/internal/collective"
	"bruck/internal/intmath"
	"bruck/internal/lowerbound"
	"bruck/internal/mpsim"
	"bruck/internal/partition"
	"bruck/internal/sweep"
)

type concatParams struct {
	bounds     bool
	optimality bool
	baselines  bool
	allocs     bool
	b          int
	transport  string
	reportJSON bool
}

func newConcatCmd() *command {
	fs := newFlagSet("concat")
	var p concatParams
	fs.BoolVar(&p.bounds, "bounds", false, "print achieved C1/C2 vs lower bounds for both operations")
	fs.BoolVar(&p.optimality, "optimality", false, "sweep the special range and show the last-round policies")
	fs.BoolVar(&p.baselines, "baselines", false, "compare the circulant algorithm with the baselines")
	fs.BoolVar(&p.allocs, "allocs", false, "compare legacy vs flat-buffer allocations per operation")
	fs.IntVar(&p.b, cli.FlagBytes, 4, "block size in bytes")
	fs.StringVar(&p.transport, cli.FlagTransport, "chan", "simulator transport backend: chan or slot")
	fs.BoolVar(&p.reportJSON, cli.FlagReportJSON, false, "emit the JSON report instead of text")
	c := &command{name: "concat", summary: "Sections 2/4 concat study: bounds, special range, baselines", fs: fs}
	c.exec = func(args []string, w io.Writer) error {
		if err := fs.Parse(args); err != nil {
			return err
		}
		return runConcatStudy(w, p)
	}
	return c
}

func runConcatStudy(w io.Writer, p concatParams) error {
	backend, err := mpsim.ParseBackend(p.transport)
	if err != nil {
		return err
	}
	rp := newReporter(w, p.reportJSON)
	switch {
	case p.bounds:
		err = runBounds(rp, backend, p.b)
	case p.optimality:
		err = runOptimality(rp, p.b)
	case p.baselines:
		err = runBaselines(rp, backend, p.b)
	case p.allocs:
		err = runConcatAllocs(rp, backend, p.b)
	default:
		return fmt.Errorf("pick one of -bounds, -optimality, -baselines or -allocs")
	}
	if err != nil {
		return err
	}
	return rp.flush()
}

func runBounds(rp *reporter, backend mpsim.Backend, b int) error {
	w := rp.text()
	ns := []int{4, 5, 8, 9, 16, 17, 27, 32, 64, 100}
	ks := []int{1, 2, 3, 4}
	rows, err := sweep.ConcatBoundsTable(backend, ns, ks, b)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "concatenation: achieved vs lower bounds (b = %d)\n\n%s\n", b, sweep.RenderBounds(rows))
	irows, err := sweep.IndexBoundsTable(backend, []int{8, 9, 16, 27, 64}, []int{1, 2, 3}, b)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "index: achieved vs lower bounds (b = %d)\n\n%s", b, sweep.RenderBounds(irows))
	rp.add(sweep.BoundsReport("concat-bounds", rows))
	rp.add(sweep.BoundsReport("index-bounds", irows))
	return nil
}

func runOptimality(rp *reporter, b int) error {
	w := rp.text()
	fmt.Fprintf(w, "special range sweep (b >= 3, k >= 3, (k+1)^d - k < n < (k+1)^d), b = %d\n\n", b)
	fmt.Fprintf(w, "%5s %3s %13s | %19s | %19s\n", "n", "k", "optimal exists",
		"min-rounds C1/C2", "min-volume C1/C2")
	t := &cli.Table{Name: "special-range", Columns: []string{
		"n", "k", "optimal_exists", "min_rounds_c1", "min_rounds_c2", "min_volume_c1", "min_volume_c2", "c1_lb", "c2_lb",
	}}
	for k := 3; k <= 4; k++ {
		for n := k + 2; n <= 130; n++ {
			if !partition.InSpecialRange(n, b, k) {
				continue
			}
			d := intmath.CeilLog(k+1, n)
			n1 := intmath.Pow(k+1, d-1)
			exists := partition.OptimalExists(b, n-n1, n1, k)
			c1r, c2r, err := collective.ConcatCost(n, b, k, partition.MinRounds)
			if err != nil {
				return err
			}
			c1v, c2v, err := collective.ConcatCost(n, b, k, partition.MinVolume)
			if err != nil {
				return err
			}
			c1LB := lowerbound.ConcatRounds(n, k)
			c2LB := lowerbound.ConcatVolume(n, b, k)
			fmt.Fprintf(w, "%5d %3d %13v | %6d/%d (LB %d/%d) | %6d/%d (LB %d/%d)\n",
				n, k, exists, c1r, c2r, c1LB, c2LB, c1v, c2v, c1LB, c2LB)
			t.AddRow(fmt.Sprint(n), fmt.Sprint(k), fmt.Sprint(exists),
				fmt.Sprint(c1r), fmt.Sprint(c2r), fmt.Sprint(c1v), fmt.Sprint(c2v),
				fmt.Sprint(c1LB), fmt.Sprint(c2LB))
		}
	}
	rp.add(t)
	return nil
}

func runBaselines(rp *reporter, backend mpsim.Backend, b int) error {
	w := rp.text()
	fmt.Fprintf(w, "concatenation algorithms, one port, b = %d, transport = %s\n\n", b, backend)
	fmt.Fprintf(w, "%5s %-20s %8s %10s %12s %12s\n", "n", "algorithm", "C1", "C2", "C1 bound", "C2 bound")
	t := &cli.Table{Name: "concat-baselines", Columns: []string{"n", "algorithm", "c1", "c2", "c1_bound", "c2_bound"}}
	for _, n := range []int{8, 16, 32, 64} {
		for _, alg := range []collective.ConcatAlgorithm{
			collective.ConcatCirculant, collective.ConcatFolklore,
			collective.ConcatRing, collective.ConcatRecursiveDoubling,
		} {
			e := mpsim.MustNew(n, mpsim.WithTransport(backend))
			in := make([][]byte, n)
			for i := range in {
				in[i] = make([]byte, b)
			}
			_, res, err := collective.Concat(e, mpsim.WorldGroup(n), in, collective.ConcatOptions{Algorithm: alg})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%5d %-20s %8d %10d %12d %12d\n", n, alg, res.C1, res.C2,
				lowerbound.ConcatRounds(n, 1), lowerbound.ConcatVolume(n, b, 1))
			t.AddRow(fmt.Sprint(n), fmt.Sprint(alg), fmt.Sprint(res.C1), fmt.Sprint(res.C2),
				fmt.Sprint(lowerbound.ConcatRounds(n, 1)), fmt.Sprint(lowerbound.ConcatVolume(n, b, 1)))
		}
	}
	rp.add(t)
	return nil
}

func runConcatAllocs(rp *reporter, backend mpsim.Backend, b int) error {
	w := rp.text()
	fmt.Fprintf(w, "concat allocations per operation, legacy (block matrix) vs flat (zero-copy) vs compiled plan, b = %d, transport = %s\n\n", b, backend)
	fmt.Fprintf(w, "%5s %3s %14s %14s %14s %12s\n", "n", "k", "legacy", "flat", "plan", "reduction")
	t := &cli.Table{Name: "concat-allocs", Columns: []string{"n", "k", "legacy", "flat", "plan", "reduction_pct"}}
	for _, tc := range []struct{ n, k int }{{16, 1}, {32, 1}, {64, 1}, {64, 3}} {
		legacy, flat, planned, err := sweep.ConcatAllocs(backend, tc.n, b, tc.k, 10)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%5d %3d %14.0f %14.0f %14.0f %11.0f%%\n", tc.n, tc.k, legacy, flat, planned, 100*(1-planned/legacy))
		t.AddRow(fmt.Sprint(tc.n), fmt.Sprint(tc.k), fmt.Sprintf("%.0f", legacy), fmt.Sprintf("%.0f", flat),
			fmt.Sprintf("%.0f", planned), fmt.Sprintf("%.0f", 100*(1-planned/legacy)))
	}
	rp.add(t)
	return nil
}
