package main

import (
	"strings"
	"testing"

	"bruck/internal/mpsim"
)

func render(t *testing.T, fig, n, r int) string {
	t.Helper()
	return renderOn(t, fig, n, r, mpsim.BackendChan)
}

func renderOn(t *testing.T, fig, n, r int, backend mpsim.Backend) string {
	t.Helper()
	var sb strings.Builder
	if err := renderFig(&sb, fig, n, r, backend); err != nil {
		t.Fatalf("renderFig(%d, %d, %d, %s): %v", fig, n, r, backend, err)
	}
	return sb.String()
}

func TestRenderFig1(t *testing.T) {
	out := render(t, 1, 5, 2)
	for _, want := range []string{"Figure 1", "before:", "after:", "p4", "44"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 1 output lacks %q", want)
		}
	}
}

func TestRenderFig2And3(t *testing.T) {
	out2 := render(t, 2, 5, 2)
	if !strings.Contains(out2, "after Phase 3") {
		t.Error("figure 2 output lacks Phase 3 snapshot")
	}
	out3 := render(t, 3, 5, 2)
	for _, want := range []string{"r = 2", "rotate 1 right", "rotate 2 right", "rotate 4 right"} {
		if !strings.Contains(out3, want) {
			t.Errorf("figure 3 output lacks %q", want)
		}
	}
}

func TestRenderFig7And8(t *testing.T) {
	out7 := render(t, 7, 5, 2)
	for _, want := range []string{"rooted at node 0", "0 -> 1", "0 -> 2", "1 -> 4", "2 -> 8", "offset 6"} {
		if !strings.Contains(out7, want) {
			t.Errorf("figure 7 output lacks %q", want)
		}
	}
	out8 := render(t, 8, 5, 2)
	for _, want := range []string{"rooted at node 1", "1 -> 2", "3 -> 0", "added to every node label"} {
		if !strings.Contains(out8, want) {
			t.Errorf("figure 8 output lacks %q", want)
		}
	}
}

func TestRenderFig9(t *testing.T) {
	out := render(t, 9, 5, 2)
	for _, want := range []string{"Figure 9", "after round 0", "after last round", "rank order"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 9 output lacks %q", want)
		}
	}
}

func TestRenderUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := renderFig(&sb, 42, 5, 2, mpsim.BackendChan); err == nil {
		t.Error("unknown figure accepted")
	}
}

// TestTransportFlagParity: figures accepts the same -transport values
// as the other commands, verifies algorithm figures on the selected
// backend, and rejects unknown backends at the flag boundary.
func TestTransportFlagParity(t *testing.T) {
	for _, backend := range []mpsim.Backend{mpsim.BackendChan, mpsim.BackendSlot} {
		for _, fig := range []int{2, 3, 9} {
			out := renderOn(t, fig, 5, 2, backend)
			want := "verified byte-level on the " + string(backend) + " transport"
			if !strings.Contains(out, want) {
				t.Errorf("figure %d on %s lacks %q", fig, backend, want)
			}
		}
		// Structural figures accept the flag without claiming verification.
		if out := renderOn(t, 7, 5, 2, backend); strings.Contains(out, "verified byte-level") {
			t.Errorf("figure 7 claims byte-level verification but renders pure structure")
		}
	}
	if _, err := mpsim.ParseBackend("bogus"); err == nil {
		t.Error("ParseBackend accepted an unknown transport")
	}
	// An unknown backend smuggled past the flag parser still fails.
	var sb strings.Builder
	if err := renderFig(&sb, 9, 5, 2, mpsim.Backend("bogus")); err == nil {
		t.Error("renderFig verified on an unknown transport")
	}
}

func TestRenderTable1(t *testing.T) {
	var sb strings.Builder
	if err := renderTable1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 1", "p3", "p9",
		"area A1: 7 entries, columns 0-2 (span 3), offset 3",
		"area A2: 7 entries, columns 2-4 (span 3), offset 5",
		"area A3: 7 entries, columns 4-6 (span 3), offset 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 output lacks %q:\n%s", want, out)
		}
	}
}
