package main

import (
	"strconv"
	"strings"
	"testing"

	"bruck/internal/costmodel"
	"bruck/internal/sweep"
)

// textReporter wraps a builder as a text-mode reporter, so the study
// functions' historic text output can be pinned directly.
func textReporter(sb *strings.Builder) *reporter {
	return newReporter(sb, false)
}

func TestRunFig4(t *testing.T) {
	h := sweep.NewHarness(costmodel.SP1)
	var sb strings.Builder
	if err := runFig4(textReporter(&sb), h, 16, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 4", "r=2", "r=16", "best radix per size"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestRunFig4CSV(t *testing.T) {
	h := sweep.NewHarness(costmodel.SP1)
	var sb strings.Builder
	if err := runFig4(textReporter(&sb), h, 8, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	var header string
	for _, l := range lines {
		if strings.HasPrefix(l, "bytes,") {
			header = l
		}
	}
	if header != "bytes,r=2,r=4,r=8" {
		t.Errorf("CSV header = %q", header)
	}
}

func TestRunFig5ReportsCrossoverInPaperRange(t *testing.T) {
	h := sweep.NewHarness(costmodel.SP1)
	var sb strings.Builder
	if err := runFig5(textReporter(&sb), h, 64, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	idx := strings.Index(out, "break-even point of r=2 vs r=n: ")
	if idx < 0 {
		t.Fatalf("no crossover line:\n%s", out)
	}
	rest := out[idx+len("break-even point of r=2 vs r=n: "):]
	numEnd := strings.IndexByte(rest, ' ')
	cross, err := strconv.Atoi(rest[:numEnd])
	if err != nil {
		t.Fatalf("bad crossover %q: %v", rest[:numEnd], err)
	}
	if cross < 100 || cross > 200 {
		t.Errorf("crossover %d outside the paper's 100-200 byte window", cross)
	}
}

func TestRunFig6(t *testing.T) {
	h := sweep.NewHarness(costmodel.SP1)
	var sb strings.Builder
	if err := runFig6(textReporter(&sb), h, 16, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 6", "radix", "32 bytes", "128 bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestRunTune(t *testing.T) {
	var sb strings.Builder
	if err := runTune(textReporter(&sb), 16, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"optimal radix", "mixed vector", "8192"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}
