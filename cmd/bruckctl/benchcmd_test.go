package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bruck/internal/benchsnap"
)

// TestBenchWritesSchemaValidSnapshots runs the real suite at minimal
// settings and requires every written BENCH_<area>.json to round-trip
// through the benchsnap schema.
func TestBenchWritesSchemaValidSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full bench suite once")
	}
	dir := t.TempDir()
	var sb strings.Builder
	if err := runBench(&sb, benchParams{short: true, out: dir}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		t.Fatalf("wrote %d files, want 4 (collectives, hier, reduce, pipeline)", len(ents))
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		s, err := benchsnap.Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if e.Name() != benchsnap.Filename(s.Area) {
			t.Errorf("file %s holds area %q", e.Name(), s.Area)
		}
		canon, err := s.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if string(canon) != string(data) {
			t.Errorf("%s is not in canonical form", e.Name())
		}
		// Identical snapshots compare clean; an injected over-threshold
		// ns regression must be caught (the compare gate's two acceptance
		// legs).
		if err := runCompare(&sb, compareParams{ns: 0.25, bytes: 0.10, allocs: 0.10},
			[]string{filepath.Join(dir, e.Name()), filepath.Join(dir, e.Name())}); err != nil {
			t.Errorf("self-compare of %s: %v", e.Name(), err)
		}
		bad := *s
		bad.Cases = append([]benchsnap.Case(nil), s.Cases...)
		bad.Cases[0].NsPerOp *= 10
		badData, err := bad.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		badPath := filepath.Join(dir, "bad-"+e.Name())
		if err := os.WriteFile(badPath, badData, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := runCompare(&sb, compareParams{ns: 0.25, bytes: 0.10, allocs: 0.10},
			[]string{filepath.Join(dir, e.Name()), badPath}); err == nil {
			t.Errorf("injected 10x ns/op regression in %s passed compare", e.Name())
		}
		if err := os.Remove(badPath); err != nil {
			t.Fatal(err)
		}
		if err := runCompare(&sb, compareParams{ns: 0.25, bytes: 0.10, allocs: 0.10, selftest: true},
			[]string{filepath.Join(dir, e.Name())}); err != nil {
			t.Errorf("compare -selftest on %s: %v", e.Name(), err)
		}
	}
}

// TestBenchFilters: -area and -case narrow the suite; impossible
// filters are hard errors, not silent empty snapshots.
func TestBenchFilters(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := runBench(&sb, benchParams{short: true, out: dir, area: "reduce", caseFilter: "allreduce/auto/chan"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, benchsnap.Filename("reduce")))
	if err != nil {
		t.Fatal(err)
	}
	s, err := benchsnap.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cases) != 1 || s.Cases[0].Name != "allreduce/auto/chan" {
		t.Fatalf("filtered snapshot = %+v", s.Cases)
	}
	if err := runBench(&sb, benchParams{short: true, out: dir, area: "nope"}); err == nil {
		t.Error("unknown area accepted")
	}
	if err := runBench(&sb, benchParams{short: true, out: dir, caseFilter: "no-such-case"}); err == nil {
		t.Error("filter matching nothing accepted")
	}
}

// TestCompareErrors: malformed inputs and bad usage fail loudly.
func TestCompareErrors(t *testing.T) {
	var sb strings.Builder
	th := compareParams{ns: 0.25, bytes: 0.10, allocs: 0.10}
	if err := runCompare(&sb, th, []string{"only-one.json"}); err == nil {
		t.Error("one positional accepted")
	}
	if err := runCompare(&sb, th, []string{"/no/such/old.json", "/no/such/new.json"}); err == nil {
		t.Error("missing files accepted")
	}
	junk := filepath.Join(t.TempDir(), "junk.json")
	if err := os.WriteFile(junk, []byte(`{"schema":"wrong/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCompare(&sb, th, []string{junk, junk}); err == nil {
		t.Error("wrong-schema snapshot accepted")
	}
}
