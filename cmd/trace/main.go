// Command trace records and verifies the golden schedule-trace corpus
// (internal/golden): canonical JSON artifacts of every representative
// collective schedule.
//
//	trace record  [-dir d] [-case substr] [-transport b]
//	trace verify  [-dir d] [-case substr] [-transport b] [-chaos-seed s] [-chaos-inner b] [-stragglers 0,3] [-perturb]
//
// record captures each case live and (re)writes its artifact; verify
// captures each case live and diffs it against the committed artifact,
// exiting nonzero on any structural drift. Traces are
// transport-independent, so verify under -transport chaos proves the
// committed schedules survive adversarial timing. -perturb is the
// negative self-test: it structurally perturbs every live schedule and
// succeeds only if every case then FAILS verification — proving the
// diff actually detects drift.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"bruck/internal/golden"
	"bruck/internal/mpsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: trace <record|verify> [flags]")
	}
	cmd := args[0]
	fs := flag.NewFlagSet("trace "+cmd, flag.ContinueOnError)
	var (
		dir        = fs.String("dir", defaultDir(), "golden artifact directory")
		caseFilter = fs.String("case", "", "only cases whose name contains this substring")
		transport  = fs.String("transport", "chan", "backend for the live capture: chan, slot or chaos")
		chaosInner = fs.String("chaos-inner", "chan", "inner backend wrapped by the chaos transport")
		chaosSeed  = fs.Uint64("chaos-seed", 1, "chaos jitter seed")
		stragglers = fs.String("stragglers", "", "comma-separated straggler ranks for the chaos transport")
		perturb    = fs.Bool("perturb", false, "verify only: perturb each live schedule and require verification to fail")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	opts, err := engineOptions(*transport, *chaosInner, *chaosSeed, *stragglers)
	if err != nil {
		return err
	}

	cases := make([]golden.Case, 0, 16)
	for _, c := range golden.Corpus() {
		if strings.Contains(c.Name, *caseFilter) {
			cases = append(cases, c)
		}
	}
	if len(cases) == 0 {
		return fmt.Errorf("no cases match -case %q", *caseFilter)
	}

	switch cmd {
	case "record":
		for _, c := range cases {
			s, err := golden.Capture(c, opts...)
			if err != nil {
				return err
			}
			if err := golden.Write(*dir, c, s); err != nil {
				return err
			}
			fmt.Fprintf(out, "recorded %s (%d rounds)\n", golden.Path(*dir, c), s.C1)
		}
		return nil
	case "verify":
		failed := 0
		for _, c := range cases {
			s, err := golden.Capture(c, opts...)
			if err != nil {
				return err
			}
			if *perturb {
				golden.Perturb(s)
			}
			diffs, err := golden.Verify(*dir, c, s)
			if err != nil {
				return err
			}
			switch {
			case *perturb && len(diffs) == 0:
				failed++
				fmt.Fprintf(out, "FAIL %s: perturbed schedule passed verification\n", c.Name)
			case *perturb:
				fmt.Fprintf(out, "ok   %s: perturbation detected (%d diffs)\n", c.Name, len(diffs))
			case len(diffs) != 0:
				failed++
				fmt.Fprintf(out, "FAIL %s:\n", c.Name)
				for _, d := range diffs {
					fmt.Fprintf(out, "  %s\n", d)
				}
			default:
				fmt.Fprintf(out, "ok   %s\n", c.Name)
			}
		}
		if failed > 0 {
			return fmt.Errorf("%d of %d cases failed", failed, len(cases))
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want record or verify)", cmd)
	}
}

// defaultDir locates the committed corpus: golden.Dir is relative to
// the internal/golden package directory, so from a repo-root working
// directory the artifacts live under internal/golden. Fall back to the
// bare golden.Dir when run from that package directory itself.
func defaultDir() string {
	repoRel := filepath.Join("internal", "golden", golden.Dir)
	if _, err := os.Stat(repoRel); err == nil {
		return repoRel
	}
	return golden.Dir
}

// engineOptions translates the transport flags into engine options for
// golden.Capture.
func engineOptions(transport, inner string, seed uint64, stragglers string) ([]mpsim.Option, error) {
	b, err := mpsim.ParseBackend(transport)
	if err != nil {
		return nil, err
	}
	if b != mpsim.BackendChaos {
		if stragglers != "" {
			return nil, fmt.Errorf("-stragglers requires -transport chaos")
		}
		return []mpsim.Option{mpsim.WithTransport(b)}, nil
	}
	ib, err := mpsim.ParseBackend(inner)
	if err != nil {
		return nil, err
	}
	cfg := mpsim.ChaosConfig{Inner: ib, Seed: seed}
	if stragglers != "" {
		for _, f := range strings.Split(stragglers, ",") {
			rank, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("bad straggler rank %q: %w", f, err)
			}
			cfg.Stragglers = append(cfg.Stragglers, rank)
		}
	}
	return []mpsim.Option{mpsim.WithChaos(cfg)}, nil
}
