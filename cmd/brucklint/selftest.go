package main

// The -selftest mode: feed each analyzer an in-memory source holding
// one known violation of its invariant and require the analyzer to
// fire. A silent analyzer here means refactoring has hollowed out its
// detection (renamed method, moved type, broken matcher) while CI kept
// passing green — exactly the failure mode a lint gate cannot detect
// about itself from clean runs alone.

import (
	"fmt"
	"io"
	"strings"

	"bruck/internal/analysis"
)

// selftests maps analyzer name -> (synthetic package path, sources).
// The package path matters: the analyzers match types structurally by
// package suffix, so the planlife case lives in a package whose path
// ends in "collective".
var selftests = map[string]struct {
	path  string
	files map[string]string
}{
	"bufown": {
		path: "brucklint/selftest/bufown",
		files: map[string]string{
			"a.go": `package selftest

import "bruck/internal/mpsim"

func leakBuf(p *mpsim.Proc) []byte {
	b := p.AcquireBuf(8)
	return b
}
`,
		},
	},
	"detrand": {
		path: "brucklint/selftest/detrand",
		files: map[string]string{
			"a.go": `package selftest

import "time"

func stamp() time.Time {
	return time.Now()
}
`,
		},
	},
	"kernelsafe": {
		path: "brucklint/selftest/kernelsafe",
		files: map[string]string{
			"a.go": `package selftest

import "bruck/internal/buffers"

var sink []byte

func kernel() buffers.CombineFunc {
	return func(dst, src []byte) {
		sink = src
		_ = dst
	}
}
`,
		},
	},
	"planlife": {
		path: "brucklint/selftest/collective",
		files: map[string]string{
			"a.go": `package collective

type Plan struct{ c1 int }

func retune(pl *Plan) {
	pl.c1 = 2
}

var _ = retune
`,
		},
	},
}

// runSelftest exercises every selected analyzer against its injected
// violation. Exit 0 means each analyzer fired; any silent analyzer (or
// a missing selftest case) exits 1.
func runSelftest(loader *analysis.Loader, selected []*analysis.Analyzer, stdout, stderr io.Writer) int {
	failed := 0
	for _, a := range selected {
		tc, ok := selftests[a.Name]
		if !ok {
			fmt.Fprintf(stderr, "brucklint: selftest: no injected violation for analyzer %s\n", a.Name)
			failed++
			continue
		}
		pkg, err := loader.CheckSource(tc.path, tc.files)
		if err != nil {
			fmt.Fprintf(stderr, "brucklint: selftest: %s: %v\n", a.Name, err)
			failed++
			continue
		}
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			fmt.Fprintf(stderr, "brucklint: selftest: %s: %v\n", a.Name, err)
			failed++
			continue
		}
		if len(diags) == 0 {
			fmt.Fprintf(stderr, "brucklint: selftest: %s did not fire on its injected violation\n", a.Name)
			failed++
			continue
		}
		msgs := make([]string, len(diags))
		for i, d := range diags {
			msgs[i] = d.Message
		}
		fmt.Fprintf(stdout, "selftest %-12s ok (%d finding(s): %s)\n", a.Name, len(diags), strings.Join(msgs, "; "))
	}
	if failed > 0 {
		return 1
	}
	return 0
}
