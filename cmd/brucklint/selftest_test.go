package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSelftest runs the injected-violation mode: every registered
// analyzer must fire on its known-bad source.
func TestSelftest(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-selftest"}, &out, &errb); code != 0 {
		t.Fatalf("-selftest exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	for _, a := range registry {
		if !strings.Contains(out.String(), "selftest "+a.Name) {
			t.Errorf("selftest output missing analyzer %s:\n%s", a.Name, out.String())
		}
	}
}

// TestFindingsExitOne points the driver at a fixture package holding
// deliberate violations and requires exit code 1 with findings on
// stdout.
func TestFindingsExitOne(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-analyzers", "bufown", "../../internal/analysis/bufown/testdata/src/a"}, &out, &errb)
	if code != 1 {
		t.Fatalf("fixture run exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "bufown") {
		t.Errorf("findings output missing analyzer name:\n%s", out.String())
	}
}
