package main

// Pins the registered analyzer list and the flag vocabulary, the same
// convention as cmd/bruckctl's flags_test.go: adding, renaming or
// removing an analyzer or a flag must show up as an explicit test diff
// here, not as a silent behavior change of the CI gate.

import (
	"bytes"
	"flag"
	"io"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestRegisteredAnalyzers(t *testing.T) {
	want := []string{"bufown", "detrand", "kernelsafe", "planlife"}
	var got []string
	for _, a := range registry {
		got = append(got, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
		if _, ok := selftests[a.Name]; !ok {
			t.Errorf("analyzer %s has no selftest case", a.Name)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("registered analyzers = %v, want %v", got, want)
	}
	if !sort.StringsAreSorted(got) {
		t.Errorf("registry not alphabetical: %v", got)
	}
	for name := range selftests {
		found := false
		for _, a := range registry {
			if a.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("selftest case %s has no registered analyzer", name)
		}
	}
}

func TestFlagVocabulary(t *testing.T) {
	want := map[string]bool{
		"list":      true,
		"selftest":  true,
		"analyzers": true,
	}
	fs, _ := newFlagSet(io.Discard)
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		got[f.Name] = true
		if f.Usage == "" {
			t.Errorf("flag -%s has no usage text", f.Name)
		}
	})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("flag vocabulary = %v, want %v", got, want)
	}
}

func TestListMode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, errb.String())
	}
	for _, a := range registry {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing %s:\n%s", a.Name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("-analyzers nosuch exited %d, want 2", code)
	}
}
