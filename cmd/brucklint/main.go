// Command brucklint runs the repo's invariant analyzers (bufown,
// detrand, kernelsafe, planlife — see internal/analysis) over module
// packages and reports findings in file:line:col form.
//
// Usage:
//
//	brucklint [-list] [-selftest] [-analyzers a,b] [packages]
//
// Packages are directories or "dir/..." patterns relative to the
// working directory; the default is "./..." from the module root.
// Findings exit 1, a clean run exits 0, and load or usage errors exit
// 2. Intentional violations are suppressed in source with a
// "//lint:allow <analyzer> <reason>" comment on or directly above the
// offending line.
//
// brucklint is a standalone driver rather than a `go vet -vettool`
// plugin: the vettool protocol feeds analyzers gc export data, which
// needs the build cache of a full `go build`, while this driver
// type-checks the module from source (internal/analysis/load.go) and so
// also works on a cold checkout — and, via -selftest, on injected
// sources that never touch the filesystem.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bruck/internal/analysis"
	"bruck/internal/analysis/bufown"
	"bruck/internal/analysis/detrand"
	"bruck/internal/analysis/kernelsafe"
	"bruck/internal/analysis/planlife"
)

// registry is the pinned analyzer set, alphabetical by name; the
// table test in registry_test.go holds the list stable.
var registry = []*analysis.Analyzer{
	bufown.Analyzer,
	detrand.Analyzer,
	kernelsafe.Analyzer,
	planlife.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options holds the parsed flag values; newFlagSet declares the full
// flag vocabulary, which flags_test.go pins.
type options struct {
	list     bool
	selftest bool
	only     string
}

func newFlagSet(stderr io.Writer) (*flag.FlagSet, *options) {
	opts := &options{}
	fs := flag.NewFlagSet("brucklint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.BoolVar(&opts.list, "list", false, "list registered analyzers and exit")
	fs.BoolVar(&opts.selftest, "selftest", false, "inject a known violation per analyzer and verify each fires")
	fs.StringVar(&opts.only, "analyzers", "", "comma-separated subset of analyzers to run (default all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: brucklint [-list] [-selftest] [-analyzers a,b] [packages]\n")
		fs.PrintDefaults()
	}
	return fs, opts
}

func run(args []string, stdout, stderr io.Writer) int {
	fs, opts := newFlagSet(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if opts.list {
		for _, a := range registry {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := selectAnalyzers(opts.only)
	if err != nil {
		fmt.Fprintf(stderr, "brucklint: %v\n", err)
		return 2
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "brucklint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "brucklint: %v\n", err)
		return 2
	}
	if opts.selftest {
		return runSelftest(loader, selected, stdout, stderr)
	}
	dirs, err := resolvePatterns(root, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "brucklint: %v\n", err)
		return 2
	}
	findings := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(stderr, "brucklint: %v\n", err)
			return 2
		}
		diags, err := analysis.Run(pkg, selected)
		if err != nil {
			fmt.Fprintf(stderr, "brucklint: %s: %v\n", pkg.Path, err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
		}
		findings += len(diags)
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "brucklint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -analyzers flag against the registry.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return registry, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range registry {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// resolvePatterns expands package arguments into package directories.
// "dir/..." walks dir; a plain argument names one directory; no
// arguments means everything under the module root.
func resolvePatterns(root string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(ds ...string) {
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	for _, arg := range args {
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			base := rest
			if base == "." || base == "" {
				base = root
			}
			sub, err := analysis.PackageDirs(base)
			if err != nil {
				return nil, err
			}
			add(sub...)
			continue
		}
		add(arg)
	}
	sort.Strings(dirs)
	return dirs, nil
}
