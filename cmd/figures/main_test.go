package main

import (
	"strings"
	"testing"
)

func render(t *testing.T, fig, n, r int) string {
	t.Helper()
	var sb strings.Builder
	if err := renderFig(&sb, fig, n, r); err != nil {
		t.Fatalf("renderFig(%d, %d, %d): %v", fig, n, r, err)
	}
	return sb.String()
}

func TestRenderFig1(t *testing.T) {
	out := render(t, 1, 5, 2)
	for _, want := range []string{"Figure 1", "before:", "after:", "p4", "44"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 1 output lacks %q", want)
		}
	}
}

func TestRenderFig2And3(t *testing.T) {
	out2 := render(t, 2, 5, 2)
	if !strings.Contains(out2, "after Phase 3") {
		t.Error("figure 2 output lacks Phase 3 snapshot")
	}
	out3 := render(t, 3, 5, 2)
	for _, want := range []string{"r = 2", "rotate 1 right", "rotate 2 right", "rotate 4 right"} {
		if !strings.Contains(out3, want) {
			t.Errorf("figure 3 output lacks %q", want)
		}
	}
}

func TestRenderFig7And8(t *testing.T) {
	out7 := render(t, 7, 5, 2)
	for _, want := range []string{"rooted at node 0", "0 -> 1", "0 -> 2", "1 -> 4", "2 -> 8", "offset 6"} {
		if !strings.Contains(out7, want) {
			t.Errorf("figure 7 output lacks %q", want)
		}
	}
	out8 := render(t, 8, 5, 2)
	for _, want := range []string{"rooted at node 1", "1 -> 2", "3 -> 0", "added to every node label"} {
		if !strings.Contains(out8, want) {
			t.Errorf("figure 8 output lacks %q", want)
		}
	}
}

func TestRenderFig9(t *testing.T) {
	out := render(t, 9, 5, 2)
	for _, want := range []string{"Figure 9", "after round 0", "after last round", "rank order"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 9 output lacks %q", want)
		}
	}
}

func TestRenderUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := renderFig(&sb, 42, 5, 2); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRenderTable1(t *testing.T) {
	var sb strings.Builder
	if err := renderTable1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 1", "p3", "p9",
		"area A1: 7 entries, columns 0-2 (span 3), offset 3",
		"area A2: 7 entries, columns 2-4 (span 3), offset 5",
		"area A3: 7 entries, columns 4-6 (span 3), offset 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 output lacks %q:\n%s", want, out)
		}
	}
}
