// Command figures renders the structural figures and tables of the
// paper as text: the processor-memory configurations of Figures 1, 2
// and 3 (index operation), the spanning trees of Figures 7 and 8
// (concatenation), the concatenation trace of Figure 9, and the
// table-partitioning example of Table 1.
//
// Usage:
//
//	figures -fig 1|2|3|7|8|9 [-n N] [-r R]
//	figures -table 1
//	figures -all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bruck/internal/circulant"
	"bruck/internal/intmath"
	"bruck/internal/partition"
	"bruck/internal/trace"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to render (1, 2, 3, 7, 8, 9)")
	table := flag.Int("table", 0, "table number to render (1)")
	all := flag.Bool("all", false, "render every figure and table")
	n := flag.Int("n", 5, "number of processors for figures 1-3 and 9")
	r := flag.Int("r", 2, "radix for figure 3")
	flag.Parse()

	if *all {
		for _, f := range []int{1, 2, 3, 7, 8, 9} {
			if err := renderFig(os.Stdout, f, *n, *r); err != nil {
				fatal(err)
			}
		}
		if err := renderTable1(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *table == 1 {
		if err := renderTable1(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := renderFig(os.Stdout, *fig, *n, *r); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}

func renderFig(w io.Writer, fig, n, r int) error {
	switch fig {
	case 1:
		fmt.Fprintf(w, "=== Figure 1: memory-processor configurations before and after an index operation on %d processors ===\n\n", n)
		fmt.Fprintf(w, "before:\n%s\nafter:\n%s\n", trace.InitialIndex(n), trace.FinalIndex(n))
	case 2:
		fmt.Fprintf(w, "=== Figure 2: the three phases of the index operation on %d processors (r = n) ===\n\n", n)
		tr, err := trace.TraceIndex(n, n)
		if err != nil {
			return err
		}
		fmt.Fprint(w, tr)
	case 3:
		fmt.Fprintf(w, "=== Figure 3: the index algorithm with r = %d on %d processors (optimal C1) ===\n\n", r, n)
		tr, err := trace.TraceIndex(n, r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, tr)
	case 7, 8:
		root := fig - 7 // figure 7 is T0, figure 8 is T1
		fmt.Fprintf(w, "=== Figure %d: constructing the spanning tree rooted at node %d for n = 9 and k = 2 ===\n\n", fig, root)
		t0, err := circulant.BuildFullTree(9, 2, 0, circulant.Positive)
		if err != nil {
			return err
		}
		t := t0.Translate(root)
		for round := 0; round < t.Rounds(); round++ {
			fmt.Fprintf(w, "round %d edges:\n", round)
			for _, e := range t.RoundEdges(round) {
				fmt.Fprintf(w, "  %d -> %d  (offset %d)\n", e.Parent, e.Child, intmath.Mod(e.Child-e.Parent, 9))
			}
		}
		if root > 0 {
			fmt.Fprintf(w, "\n(T%d is T0 with %d added to every node label, mod 9.)\n", root, root)
		}
		fmt.Fprintln(w)
	case 9:
		fmt.Fprintf(w, "=== Figure 9: the one-port concatenation algorithm with %d processors ===\n\n", n)
		tr, err := trace.TraceConcat(n)
		if err != nil {
			return err
		}
		fmt.Fprint(w, tr)
	default:
		return fmt.Errorf("unknown figure %d (have 1, 2, 3, 7, 8, 9)", fig)
	}
	return nil
}

func renderTable1(w io.Writer) error {
	fmt.Fprintln(w, "=== Table 1: table partitioning for n1 = 3, n2 = 7, b = 3 bytes, k = 3 ports ===")
	fmt.Fprintln(w)
	const b, n2, n1, k = 3, 7, 3, 3
	plan, err := partition.Solve(b, n2, n1, k, partition.PreferOptimal)
	if err != nil {
		return err
	}
	// Render the table grid: rows are bytes, columns are the n2 yet
	// unspanned nodes; cells show the area number.
	cell := make([][]int, b)
	for row := range cell {
		cell[row] = make([]int, n2)
	}
	for _, areas := range plan.Rounds {
		for ai, area := range areas {
			for _, run := range area.Runs {
				for row := run.Row0; row < run.Row0+run.NRows; row++ {
					cell[row][run.Col] = ai + 1
				}
			}
		}
	}
	fmt.Fprintf(w, "        ")
	for c := 0; c < n2; c++ {
		fmt.Fprintf(w, " p%-3d", n1+c)
	}
	fmt.Fprintln(w)
	for row := 0; row < b; row++ {
		fmt.Fprintf(w, "byte %d: ", row)
		for c := 0; c < n2; c++ {
			fmt.Fprintf(w, " A%-3d", cell[row][c])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	for _, areas := range plan.Rounds {
		for ai, area := range areas {
			fmt.Fprintf(w, "area A%d: %d entries, columns %d-%d (span %d), offset %d\n",
				ai+1, area.Size, area.Left, area.Right(), area.Span(), n1+area.Left)
		}
	}
	fmt.Fprintln(w)
	return nil
}
