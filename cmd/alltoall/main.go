// Command alltoall runs a single collective operation on the simulated
// multiport machine and reports its schedule measures and model times.
//
//	alltoall -op index  -n 64 -b 128 -r 8 -k 1
//	alltoall -op concat -n 17 -b 64 -k 2
//	alltoall -op index  -n 64 -b 128 -r auto           # tuned radix
//	alltoall -op index  -n 64 -b 128 -flat             # zero-copy flat-buffer path
//	alltoall -op index  -n 64 -b 128 -transport slot   # shared-memory slot transport
//	alltoall -op index  -n 64 -b 128 -repeat 100       # plan-reuse study
//
// With -repeat N (N > 1) the command runs the operation N times twice
// over on flat buffers — once compiling the schedule on every call and
// once executing a single precompiled plan — verifies both produce the
// same bytes, and reports the wall-clock per operation of each mode.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"bruck/internal/buffers"
	"bruck/internal/collective"
	"bruck/internal/costmodel"
	"bruck/internal/lowerbound"
	"bruck/internal/mpsim"
)

// params collects one invocation's configuration.
type params struct {
	op        string
	n         int
	k         int
	b         int
	radix     string
	alg       string
	flat      bool
	transport string
	repeat    int
}

func main() {
	var p params
	flag.StringVar(&p.op, "op", "index", "operation: index or concat")
	flag.IntVar(&p.n, "n", 16, "number of processors")
	flag.IntVar(&p.k, "k", 1, "ports per processor")
	flag.IntVar(&p.b, "b", 64, "block size in bytes")
	flag.StringVar(&p.radix, "r", "", "index radix (2..n), empty for k+1, or 'auto' for model-tuned")
	flag.StringVar(&p.alg, "alg", "", "algorithm override (index: bruck|direct|xor; concat: circulant|folklore|ring|recdbl)")
	flag.BoolVar(&p.flat, "flat", false, "run the zero-copy flat-buffer path (IndexFlat/ConcatFlat)")
	flag.StringVar(&p.transport, "transport", "chan", "simulator transport backend: chan or slot")
	flag.IntVar(&p.repeat, "repeat", 1, "run the operation N times and compare compile-per-call vs plan reuse")
	flag.Parse()

	if err := run(os.Stdout, p); err != nil {
		fmt.Fprintln(os.Stderr, "alltoall:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, p params) error {
	backend := mpsim.BackendChan
	if p.transport != "" {
		var err error
		if backend, err = mpsim.ParseBackend(p.transport); err != nil {
			return err
		}
	}
	e, err := mpsim.New(p.n, mpsim.Ports(p.k), mpsim.Record(true), mpsim.WithTransport(backend))
	if err != nil {
		return err
	}
	g := mpsim.WorldGroup(p.n)

	var res *collective.Result
	switch p.op {
	case "index":
		opt := collective.IndexOptions{}
		switch p.alg {
		case "", "bruck":
			opt.Algorithm = collective.IndexBruck
		case "direct":
			opt.Algorithm = collective.IndexDirect
		case "xor":
			opt.Algorithm = collective.IndexPairwiseXOR
		default:
			return fmt.Errorf("unknown index algorithm %q", p.alg)
		}
		switch p.radix {
		case "":
		case "auto":
			opt.Radix = collective.OptimalRadix(costmodel.SP1, p.n, p.b, p.k, false)
			fmt.Fprintf(w, "tuned radix: %d\n", opt.Radix)
		default:
			r, err := strconv.Atoi(p.radix)
			if err != nil {
				return fmt.Errorf("bad radix %q: %v", p.radix, err)
			}
			opt.Radix = r
		}
		if p.repeat > 1 {
			return runIndexRepeat(w, p, e, g, opt)
		}
		if p.flat {
			fin, ferr := buffers.New(p.n, p.n, p.b)
			if ferr != nil {
				return ferr
			}
			fout, ferr := buffers.New(p.n, p.n, p.b)
			if ferr != nil {
				return ferr
			}
			res, err = collective.IndexFlat(e, g, fin, fout, opt)
		} else {
			in := make([][][]byte, p.n)
			for i := range in {
				in[i] = make([][]byte, p.n)
				for j := range in[i] {
					in[i][j] = make([]byte, p.b)
				}
			}
			_, res, err = collective.Index(e, g, in, opt)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "index: n=%d k=%d b=%d alg=%v path=%s transport=%s\n", p.n, p.k, p.b, opt.Algorithm, pathName(p.flat), e.Transport())
		fmt.Fprintf(w, "  C1 = %d rounds   (lower bound %d)\n", res.C1, lowerbound.IndexRounds(p.n, p.k))
		fmt.Fprintf(w, "  C2 = %d bytes    (lower bound %d)\n", res.C2, lowerbound.IndexVolume(p.n, p.b, p.k))

	case "concat":
		opt := collective.ConcatOptions{}
		switch p.alg {
		case "", "circulant":
			opt.Algorithm = collective.ConcatCirculant
		case "folklore":
			opt.Algorithm = collective.ConcatFolklore
		case "ring":
			opt.Algorithm = collective.ConcatRing
		case "recdbl":
			opt.Algorithm = collective.ConcatRecursiveDoubling
		default:
			return fmt.Errorf("unknown concat algorithm %q", p.alg)
		}
		if p.repeat > 1 {
			return runConcatRepeat(w, p, e, g, opt)
		}
		if p.flat {
			fin, ferr := buffers.New(p.n, 1, p.b)
			if ferr != nil {
				return ferr
			}
			fout, ferr := buffers.New(p.n, p.n, p.b)
			if ferr != nil {
				return ferr
			}
			res, err = collective.ConcatFlat(e, g, fin, fout, opt)
		} else {
			in := make([][]byte, p.n)
			for i := range in {
				in[i] = make([]byte, p.b)
			}
			_, res, err = collective.Concat(e, g, in, opt)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "concat: n=%d k=%d b=%d alg=%v path=%s transport=%s\n", p.n, p.k, p.b, opt.Algorithm, pathName(p.flat), e.Transport())
		fmt.Fprintf(w, "  C1 = %d rounds   (lower bound %d)\n", res.C1, lowerbound.ConcatRounds(p.n, p.k))
		fmt.Fprintf(w, "  C2 = %d bytes    (lower bound %d)\n", res.C2, lowerbound.ConcatVolume(p.n, p.b, p.k))

	default:
		return fmt.Errorf("unknown operation %q", p.op)
	}

	fmt.Fprintf(w, "  total traffic = %d bytes in %d messages\n", res.TotalBytes, res.Messages)
	fmt.Fprintf(w, "  model time (SP-1 linear):    %v\n", costmodel.Duration(costmodel.SP1.Time(res.C1, res.C2)))
	fmt.Fprintf(w, "  model time (SP-1 extended):  %v\n", costmodel.Duration(costmodel.SP1Measured.Time(res.C1, res.C2)))
	if cp, err := costmodel.CriticalPath(costmodel.SP1, p.n, e.Metrics().Events()); err == nil {
		fmt.Fprintf(w, "  critical path (SP-1 linear): %v\n", costmodel.Duration(cp))
	}
	return nil
}

func pathName(flat bool) string {
	if flat {
		return "flat"
	}
	return "legacy"
}

// runIndexRepeat is the plan-reuse study for the index operation: the
// same configuration executed p.repeat times compiling on every call,
// then p.repeat times through one precompiled plan, with a byte-level
// equivalence check between the two result sets.
func runIndexRepeat(w io.Writer, p params, e *mpsim.Engine, g *mpsim.Group, opt collective.IndexOptions) error {
	fin, err := buffers.New(p.n, p.n, p.b)
	if err != nil {
		return err
	}
	fillPattern(fin)
	perCallOut, err := buffers.New(p.n, p.n, p.b)
	if err != nil {
		return err
	}
	planOut, err := buffers.New(p.n, p.n, p.b)
	if err != nil {
		return err
	}
	plan, err := collective.CompileIndex(e, g, p.b, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "index plan-reuse study: n=%d k=%d b=%d alg=%v transport=%s repeat=%d\n",
		p.n, p.k, p.b, opt.Algorithm, e.Transport(), p.repeat)
	return repeatStudy(w, p.repeat, plan,
		func() error { _, err := collective.IndexFlat(e, g, fin, perCallOut, opt); return err },
		func() error { _, err := plan.Execute(fin, planOut); return err },
		perCallOut, planOut)
}

// runConcatRepeat is the plan-reuse study for the concatenation, where
// compile-per-call includes re-solving the last-round table partition.
func runConcatRepeat(w io.Writer, p params, e *mpsim.Engine, g *mpsim.Group, opt collective.ConcatOptions) error {
	fin, err := buffers.New(p.n, 1, p.b)
	if err != nil {
		return err
	}
	fillPattern(fin)
	perCallOut, err := buffers.New(p.n, p.n, p.b)
	if err != nil {
		return err
	}
	planOut, err := buffers.New(p.n, p.n, p.b)
	if err != nil {
		return err
	}
	plan, err := collective.CompileConcat(e, g, p.b, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "concat plan-reuse study: n=%d k=%d b=%d alg=%v transport=%s repeat=%d\n",
		p.n, p.k, p.b, opt.Algorithm, e.Transport(), p.repeat)
	return repeatStudy(w, p.repeat, plan,
		func() error { _, err := collective.ConcatFlat(e, g, fin, perCallOut, opt); return err },
		func() error { _, err := plan.Execute(fin, planOut); return err },
		perCallOut, planOut)
}

// repeatStudy times the two execution modes, checks byte equivalence,
// and prints the comparison.
func repeatStudy(w io.Writer, repeat int, plan *collective.Plan,
	perCall, planned func() error, perCallOut, planOut *buffers.Buffers) error {
	// Warm both paths once so transport pools reach steady state before
	// the timed loops.
	if err := perCall(); err != nil {
		return err
	}
	if err := planned(); err != nil {
		return err
	}

	start := time.Now()
	for i := 0; i < repeat; i++ {
		if err := perCall(); err != nil {
			return err
		}
	}
	perCallAvg := time.Since(start) / time.Duration(repeat)

	start = time.Now()
	for i := 0; i < repeat; i++ {
		if err := planned(); err != nil {
			return err
		}
	}
	planAvg := time.Since(start) / time.Duration(repeat)

	if !perCallOut.Equal(planOut) {
		return fmt.Errorf("plan execution diverged from compile-per-call results")
	}
	fmt.Fprintf(w, "  schedule: %d rounds, largest pooled buffer %d bytes\n", plan.Rounds(), plan.MaxMessageBytes())
	fmt.Fprintf(w, "  compile-per-call: %v/op\n", perCallAvg)
	fmt.Fprintf(w, "  plan-reuse:       %v/op\n", planAvg)
	if planAvg > 0 {
		fmt.Fprintf(w, "  speedup:          %.2fx\n", float64(perCallAvg)/float64(planAvg))
	}
	fmt.Fprintln(w, "  results byte-identical across modes: ok")
	return nil
}

// fillPattern writes a deterministic pattern into a flat buffer.
func fillPattern(b *buffers.Buffers) {
	data := b.Bytes()
	for i := range data {
		data[i] = byte(i*11 + 5)
	}
}
