module bruck

go 1.22
