package bruck

// Tests for the compiled-plan API: cache identity across option
// changes, byte-equivalence of Plan.Execute and RunPlans with the
// direct flat paths on both transports, and per-plan reports from
// concurrent disjoint-group execution.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"bruck/internal/buffers"
	"bruck/internal/collective"
	"bruck/internal/intmath"
	"bruck/internal/mpsim"
)

// fillIndexInput writes a distinctive byte pattern into an index-shaped
// buffer, parameterized by seed so different machines get different
// data.
func fillIndexInput(in *Buffers, seed int) {
	n := in.Procs()
	b := in.BlockLen()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			blk := in.Block(i, j)
			for x := 0; x < b; x++ {
				blk[x] = byte(seed + i*31 + j*7 + x)
			}
		}
	}
}

func fillConcatInput(in *Buffers, seed int) {
	n := in.Procs()
	b := in.BlockLen()
	for i := 0; i < n; i++ {
		blk := in.Block(i, 0)
		for x := 0; x < b; x++ {
			blk[x] = byte(seed + i*13 + x)
		}
	}
}

// TestPlanCacheIdentity: compiling the same configuration twice returns
// the same *Plan; changing any option, the group, or the block size
// misses the cache.
func TestPlanCacheIdentity(t *testing.T) {
	m := MustNewMachine(8)
	g, err := m.NewGroup([]int{1, 3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}

	base, err := m.CompileIndex(16, WithRadix(2))
	if err != nil {
		t.Fatal(err)
	}
	same, err := m.CompileIndex(16, WithRadix(2))
	if err != nil {
		t.Fatal(err)
	}
	if base != same {
		t.Error("identical index configurations compiled to distinct plans (cache miss)")
	}
	for name, opts := range map[string][]CollectiveOption{
		"radix":     {WithRadix(4)},
		"algorithm": {WithIndexAlgorithm(IndexDirect)},
		"no-pack":   {WithRadix(2), WithoutPacking()},
		"group":     {WithRadix(2), OnGroup(g)},
	} {
		other, err := m.CompileIndex(16, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if other == base {
			t.Errorf("%s change hit the cache", name)
		}
	}
	if other, err := m.CompileIndex(32, WithRadix(2)); err != nil || other == base {
		t.Errorf("block-size change hit the cache (err %v)", err)
	}
	if mixed, err := m.CompileIndex(16, WithRadices([]int{2, 2, 2})); err != nil || mixed == base {
		t.Errorf("mixed-radix schedule hit the uniform cache entry (err %v)", err)
	}

	cbase, err := m.CompileConcat(16)
	if err != nil {
		t.Fatal(err)
	}
	if csame, err := m.CompileConcat(16); err != nil || csame != cbase {
		t.Errorf("identical concat configurations compiled to distinct plans (err %v)", err)
	}
	if cpol, err := m.CompileConcat(16, WithLastRoundPolicy(LastRoundMinVolume)); err != nil || cpol == cbase {
		t.Errorf("last-round policy change hit the cache (err %v)", err)
	}
	if calg, err := m.CompileConcat(16, WithConcatAlgorithm(ConcatRing)); err != nil || calg == cbase {
		t.Errorf("concat algorithm change hit the cache (err %v)", err)
	}
}

// TestFlatEntryPointsHitPlanCache: IndexFlat and ConcatFlat route
// through the same cache CompileIndex/CompileConcat populate — the
// "thin wrapper" property.
func TestFlatEntryPointsHitPlanCache(t *testing.T) {
	const n, b = 8, 8
	m := MustNewMachine(n)
	in, _ := NewIndexBuffers(n, b)
	out, _ := NewIndexBuffers(n, b)
	fillIndexInput(in, 1)
	if _, err := m.IndexFlat(in, out, WithRadix(2)); err != nil {
		t.Fatal(err)
	}
	cin, _ := NewConcatBuffers(n, b)
	cout, _ := NewIndexBuffers(n, b)
	fillConcatInput(cin, 2)
	if _, err := m.ConcatFlat(cin, cout); err != nil {
		t.Fatal(err)
	}
	cached := m.plans.Len()
	// Repeats of the same configurations must not add cache entries.
	if _, err := m.IndexFlat(in, out, WithRadix(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ConcatFlat(cin, cout); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CompileIndex(b, WithRadix(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CompileConcat(b); err != nil {
		t.Fatal(err)
	}
	if got := m.plans.Len(); got != cached {
		t.Errorf("repeated calls grew the plan cache from %d to %d entries", cached, got)
	}
}

// TestPlanExecuteMatchesFlat: a reused plan produces byte-identical
// results and identical reports to the direct flat path, on both
// transports, across the full (n, k) sweep.
func TestPlanExecuteMatchesFlat(t *testing.T) {
	const b = 3
	for _, backend := range []Backend{BackendChan, BackendSlot} {
		for _, k := range []int{1, 2, 3} {
			for n := 1; n <= 16; n++ {
				if k > intmath.Max(1, n-1) {
					continue
				}
				m := MustNewMachine(n, Ports(k), WithTransport(backend))
				e, err := mpsim.New(n, mpsim.Ports(k), mpsim.WithTransport(backend))
				if err != nil {
					t.Fatal(err)
				}
				g := mpsim.WorldGroup(n)

				in, _ := NewIndexBuffers(n, b)
				fillIndexInput(in, n*int(k))
				pl, err := m.CompileIndex(b)
				if err != nil {
					t.Fatalf("CompileIndex(n=%d, k=%d, %s): %v", n, k, backend, err)
				}
				for rep := 0; rep < 2; rep++ { // reuse matters: run twice
					got, _ := NewIndexBuffers(n, b)
					want, _ := NewIndexBuffers(n, b)
					gotRep, err := pl.Execute(in, got)
					if err != nil {
						t.Fatalf("plan Execute(n=%d, k=%d, %s): %v", n, k, backend, err)
					}
					wantRep, err := collective.IndexFlat(e, g, in, want, collective.IndexOptions{})
					if err != nil {
						t.Fatalf("IndexFlat(n=%d, k=%d, %s): %v", n, k, backend, err)
					}
					if !got.Equal(want) {
						t.Fatalf("index n=%d k=%d %s: plan result differs from flat path", n, k, backend)
					}
					if gotRep.C1 != wantRep.C1 || gotRep.C2 != wantRep.C2 {
						t.Fatalf("index n=%d k=%d %s: plan report (%d, %d) != flat report (%d, %d)",
							n, k, backend, gotRep.C1, gotRep.C2, wantRep.C1, wantRep.C2)
					}
				}

				cin, _ := NewConcatBuffers(n, b)
				fillConcatInput(cin, n+int(k))
				cpl, err := m.CompileConcat(b)
				if err != nil {
					t.Fatalf("CompileConcat(n=%d, k=%d, %s): %v", n, k, backend, err)
				}
				got, _ := NewIndexBuffers(n, b)
				want, _ := NewIndexBuffers(n, b)
				gotRep, err := cpl.Execute(cin, got)
				if err != nil {
					t.Fatalf("concat plan Execute(n=%d, k=%d, %s): %v", n, k, backend, err)
				}
				wantRep, err := collective.ConcatFlat(e, g, cin, want, collective.ConcatOptions{})
				if err != nil {
					t.Fatalf("ConcatFlat(n=%d, k=%d, %s): %v", n, k, backend, err)
				}
				if !got.Equal(want) {
					t.Fatalf("concat n=%d k=%d %s: plan result differs from flat path", n, k, backend)
				}
				if gotRep.C1 != wantRep.C1 || gotRep.C2 != wantRep.C2 {
					t.Fatalf("concat n=%d k=%d %s: plan report (%d, %d) != flat report (%d, %d)",
						n, k, backend, gotRep.C1, gotRep.C2, wantRep.C1, wantRep.C2)
				}
			}
		}
	}
}

// TestRunPlansMatchesSequential: an index plan and a concat plan on
// disjoint halves of one machine, executed concurrently by RunPlans,
// produce exactly the bytes and reports of sequential execution — for
// n = 1..16 group members, k = 1..3 ports, on both transports.
func TestRunPlansMatchesSequential(t *testing.T) {
	const b = 3
	for _, backend := range []Backend{BackendChan, BackendSlot} {
		for _, k := range []int{1, 2, 3} {
			for n := 1; n <= 16; n++ {
				total := 2 * n
				if k > intmath.Max(1, total-1) {
					continue
				}
				m := MustNewMachine(total, Ports(k), WithTransport(backend))
				lo := make([]int, n)
				hi := make([]int, n)
				for i := 0; i < n; i++ {
					lo[i], hi[i] = i, n+i
				}
				gLo, err := m.NewGroup(lo)
				if err != nil {
					t.Fatal(err)
				}
				gHi, err := m.NewGroup(hi)
				if err != nil {
					t.Fatal(err)
				}

				ipl, err := m.CompileIndex(b, OnGroup(gLo))
				if err != nil {
					t.Fatalf("CompileIndex(n=%d, k=%d, %s): %v", n, k, backend, err)
				}
				cpl, err := m.CompileConcat(b, OnGroup(gHi))
				if err != nil {
					t.Fatalf("CompileConcat(n=%d, k=%d, %s): %v", n, k, backend, err)
				}

				iin, _ := NewIndexBuffers(n, b)
				fillIndexInput(iin, 3*n+k)
				cin, _ := NewConcatBuffers(n, b)
				fillConcatInput(cin, 5*n+k)

				// Sequential reference.
				iWant, _ := NewIndexBuffers(n, b)
				iRepWant, err := ipl.Execute(iin, iWant)
				if err != nil {
					t.Fatalf("sequential index (n=%d, k=%d, %s): %v", n, k, backend, err)
				}
				cWant, _ := NewIndexBuffers(n, b)
				cRepWant, err := cpl.Execute(cin, cWant)
				if err != nil {
					t.Fatalf("sequential concat (n=%d, k=%d, %s): %v", n, k, backend, err)
				}

				// Concurrent run.
				iGot, _ := NewIndexBuffers(n, b)
				cGot, _ := NewIndexBuffers(n, b)
				if err := ipl.Bind(iin, iGot); err != nil {
					t.Fatal(err)
				}
				if err := cpl.Bind(cin, cGot); err != nil {
					t.Fatal(err)
				}
				reps, err := m.RunPlans([]*Plan{ipl, cpl})
				if err != nil {
					t.Fatalf("RunPlans(n=%d, k=%d, %s): %v", n, k, backend, err)
				}
				if len(reps) != 2 {
					t.Fatalf("RunPlans returned %d reports, want 2", len(reps))
				}
				if !iGot.Equal(iWant) {
					t.Fatalf("n=%d k=%d %s: concurrent index bytes differ from sequential", n, k, backend)
				}
				if !cGot.Equal(cWant) {
					t.Fatalf("n=%d k=%d %s: concurrent concat bytes differ from sequential", n, k, backend)
				}
				if reps[0].C1 != iRepWant.C1 || reps[0].C2 != iRepWant.C2 {
					t.Fatalf("n=%d k=%d %s: concurrent index report (%d, %d) != sequential (%d, %d)",
						n, k, backend, reps[0].C1, reps[0].C2, iRepWant.C1, iRepWant.C2)
				}
				if reps[1].C1 != cRepWant.C1 || reps[1].C2 != cRepWant.C2 {
					t.Fatalf("n=%d k=%d %s: concurrent concat report (%d, %d) != sequential (%d, %d)",
						n, k, backend, reps[1].C1, reps[1].C2, cRepWant.C1, cRepWant.C2)
				}
			}
		}
	}
}

// TestRunPlansValidation: overlapping groups, unbound plans, foreign
// plans and empty plan lists are rejected up front.
func TestRunPlansValidation(t *testing.T) {
	const n, b = 8, 4
	m := MustNewMachine(n)
	other := MustNewMachine(n)
	gA, _ := m.NewGroup([]int{0, 1, 2, 3})
	gB, _ := m.NewGroup([]int{3, 4, 5, 6}) // overlaps gA at 3
	gC, _ := m.NewGroup([]int{4, 5, 6, 7})

	bind := func(t *testing.T, pl *Plan) {
		t.Helper()
		in, _ := NewIndexBuffers(pl.Group().Size(), b)
		out, _ := NewIndexBuffers(pl.Group().Size(), b)
		if err := pl.Bind(in, out); err != nil {
			t.Fatal(err)
		}
	}
	plA, err := m.CompileIndex(b, OnGroup(gA))
	if err != nil {
		t.Fatal(err)
	}
	plB, err := m.CompileIndex(b, OnGroup(gB))
	if err != nil {
		t.Fatal(err)
	}
	plC, err := m.CompileIndex(b, OnGroup(gC))
	if err != nil {
		t.Fatal(err)
	}
	bind(t, plA)
	bind(t, plB)
	bind(t, plC)

	if _, err := m.RunPlans(nil); err == nil {
		t.Error("RunPlans accepted an empty plan list")
	}
	if _, err := m.RunPlans([]*Plan{plA, plB}); err == nil {
		t.Error("RunPlans accepted overlapping groups")
	}
	if _, err := m.RunPlans([]*Plan{plA, nil}); err == nil {
		t.Error("RunPlans accepted a nil plan")
	}
	unbound, err := m.CompileConcat(b, OnGroup(gC))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunPlans([]*Plan{plA, unbound}); err == nil {
		t.Error("RunPlans accepted a plan without bound buffers")
	}
	foreign, err := other.CompileIndex(b)
	if err != nil {
		t.Fatal(err)
	}
	bind(t, foreign)
	if _, err := m.RunPlans([]*Plan{foreign}); err == nil {
		t.Error("RunPlans accepted a plan compiled for another machine")
	}
	// The valid disjoint pair still runs.
	if _, err := m.RunPlans([]*Plan{plA, plC}); err != nil {
		t.Errorf("RunPlans on disjoint groups failed: %v", err)
	}
}

// TestPlanExecuteShapeValidation: executing with wrong-shaped buffers
// fails before any communication.
func TestPlanExecuteShapeValidation(t *testing.T) {
	const n, b = 6, 4
	m := MustNewMachine(n)
	pl, err := m.CompileIndex(b)
	if err != nil {
		t.Fatal(err)
	}
	good, _ := NewIndexBuffers(n, b)
	wrongN, _ := NewIndexBuffers(n+1, b)
	wrongB, _ := NewIndexBuffers(n, b+1)
	if _, err := pl.Execute(good, good); err == nil {
		t.Error("plan executed with aliased buffers")
	}
	if _, err := pl.Execute(nil, good); err == nil {
		t.Error("plan executed with nil input")
	}
	if _, err := pl.Execute(wrongN, good); err == nil {
		t.Error("plan executed with wrong processor count")
	}
	if _, err := pl.Execute(good, wrongB); err == nil {
		t.Error("plan executed with wrong block size")
	}
	if err := pl.Bind(wrongN, good); err == nil {
		t.Error("Bind accepted a wrong-shaped buffer")
	}
}

// TestPlanMixedAndAblationsMatchFlat: compiled mixed-radix, no-pack,
// direct and xor plans replay their flat counterparts exactly.
func TestPlanMixedAndAblationsMatchFlat(t *testing.T) {
	const n, b = 16, 4
	for _, tc := range []struct {
		name string
		opts []CollectiveOption
	}{
		{"mixed-2-4-2", []CollectiveOption{WithRadices([]int{2, 4, 2})}},
		{"no-pack", []CollectiveOption{WithRadix(2), WithoutPacking()}},
		{"direct", []CollectiveOption{WithIndexAlgorithm(IndexDirect)}},
		{"xor", []CollectiveOption{WithIndexAlgorithm(IndexPairwiseXOR)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := MustNewMachine(n)
			in, _ := NewIndexBuffers(n, b)
			fillIndexInput(in, 11)
			pl, err := m.CompileIndex(b, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := NewIndexBuffers(n, b)
			rep, err := pl.Execute(in, got)
			if err != nil {
				t.Fatal(err)
			}
			// The result must be the index permutation.
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if !bytes.Equal(got.Block(i, j), in.Block(j, i)) {
						t.Fatalf("out[%d][%d] != in[%d][%d]", i, j, j, i)
					}
				}
			}
			// And a second execution must reproduce it with the same report.
			got2, _ := NewIndexBuffers(n, b)
			rep2, err := pl.Execute(in, got2)
			if err != nil {
				t.Fatal(err)
			}
			if !got2.Equal(got) || rep2.C1 != rep.C1 || rep2.C2 != rep.C2 {
				t.Error("second plan execution diverged from the first")
			}
		})
	}
}

// TestRunPlansManyGroups runs four disjoint index plans at once and
// checks each result and each per-group report independently.
func TestRunPlansManyGroups(t *testing.T) {
	const groups, per, b = 4, 4, 8
	m := MustNewMachine(groups * per)
	plans := make([]*Plan, groups)
	ins := make([]*Buffers, groups)
	outs := make([]*Buffers, groups)
	for gi := 0; gi < groups; gi++ {
		ids := make([]int, per)
		for i := range ids {
			ids[i] = gi*per + i
		}
		g, err := m.NewGroup(ids)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := m.CompileIndex(b, OnGroup(g), WithRadix(2))
		if err != nil {
			t.Fatal(err)
		}
		ins[gi], _ = NewIndexBuffers(per, b)
		outs[gi], _ = NewIndexBuffers(per, b)
		fillIndexInput(ins[gi], 100+gi)
		if err := pl.Bind(ins[gi], outs[gi]); err != nil {
			t.Fatal(err)
		}
		plans[gi] = pl
	}
	reps, err := m.RunPlans(plans)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := PredictIndex(per, b, 2, 1)
	for gi := 0; gi < groups; gi++ {
		for i := 0; i < per; i++ {
			for j := 0; j < per; j++ {
				if !bytes.Equal(outs[gi].Block(i, j), ins[gi].Block(j, i)) {
					t.Fatalf("group %d: out[%d][%d] wrong", gi, i, j)
				}
			}
		}
		if reps[gi].C1 != c1 || reps[gi].C2 != c2 {
			t.Errorf("group %d report (%d, %d), want (%d, %d)", gi, reps[gi].C1, reps[gi].C2, c1, c2)
		}
	}
}

// TestPlanSurvivesFencedRun: after a deadlocked run is fenced (fresh
// transport and pools), an existing plan keeps executing correctly —
// plans hold no reference to the fenced transport generation.
func TestPlanSurvivesFencedRun(t *testing.T) {
	// Machine-level plans cannot force a deadlock, so drive the engine
	// directly: compile, deadlock the engine, execute the plan again.
	testPlanSurvivesFence(t, mpsim.BackendChan)
	testPlanSurvivesFence(t, mpsim.BackendSlot)
}

func testPlanSurvivesFence(t *testing.T, backend mpsim.Backend) {
	t.Helper()
	const n, b = 4, 8
	e, err := mpsim.New(n, mpsim.WithTransport(backend), mpsim.Watchdog(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	g := mpsim.WorldGroup(n)
	pl, err := collective.CompileIndex(e, g, b, collective.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in, _ := buffers.New(n, n, b)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for x := 0; x < b; x++ {
				in.Block(i, j)[x] = byte(i*59 + j*17 + x)
			}
		}
	}
	out1, _ := buffers.New(n, n, b)
	if _, err := pl.Execute(in, out1); err != nil {
		t.Fatalf("%s: first execute: %v", backend, err)
	}
	// Deadlock: rank 0 waits for a message nobody sends.
	err = e.Run(func(p *mpsim.Proc) error {
		if p.Rank() == 0 {
			_, err := p.Exchange(nil, []int{1})
			return err
		}
		p.Skip()
		return nil
	})
	if err == nil {
		t.Fatalf("%s: deadlock run unexpectedly succeeded", backend)
	}
	// The plan must keep working on the fenced engine's fresh transport.
	out2, _ := buffers.New(n, n, b)
	if _, err := pl.Execute(in, out2); err != nil {
		t.Fatalf("%s: execute after fence: %v", backend, err)
	}
	if !out2.Equal(out1) {
		t.Fatalf("%s: post-fence execution produced different bytes", backend)
	}
}

// TestLegacyEntryPointsStillCorrect spot-checks that the cache-routed
// legacy Index/Concat produce the defining permutations (the broad
// sweeps live in internal/collective; this guards the Machine wiring).
func TestLegacyEntryPointsStillCorrect(t *testing.T) {
	const n = 7
	m := MustNewMachine(n)
	in := make([][][]byte, n)
	for i := range in {
		in[i] = make([][]byte, n)
		for j := range in[i] {
			in[i][j] = []byte(fmt.Sprintf("B%d.%d", i, j))
		}
	}
	for rep := 0; rep < 2; rep++ { // second call exercises the cache hit
		out, _, err := m.Index(in, WithRadix(2))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !bytes.Equal(out[i][j], in[j][i]) {
					t.Fatalf("rep %d: out[%d][%d] = %q", rep, i, j, out[i][j])
				}
			}
		}
	}
	cin := make([][]byte, n)
	for i := range cin {
		cin[i] = []byte(fmt.Sprintf("C%d", i))
	}
	for rep := 0; rep < 2; rep++ {
		out, _, err := m.Concat(cin)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !bytes.Equal(out[i][j], cin[j]) {
					t.Fatalf("rep %d: concat out[%d][%d] = %q", rep, i, j, out[i][j])
				}
			}
		}
	}
}
