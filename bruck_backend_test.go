package bruck

// Cross-backend equivalence: the paper's schedules are transport-
// agnostic, so the channel and slot transports must produce byte-
// identical IndexFlat/ConcatFlat results and identical (C1, C2) on
// every shape. This is the acceptance test of the transport
// abstraction.

import (
	"bytes"
	"fmt"
	"testing"

	"bruck/internal/intmath"
)

// runIndexFlatOn executes IndexFlat on a fresh machine with the given
// backend and returns the output buffer and report.
func runIndexFlatOn(t *testing.T, backend Backend, n, k, blockLen int, opts ...CollectiveOption) (*Buffers, *Report) {
	t.Helper()
	m := MustNewMachine(n, Ports(k), WithTransport(backend))
	if m.Transport() != backend {
		t.Fatalf("Transport() = %q, want %q", m.Transport(), backend)
	}
	fin := flatIndexInput(t, n, blockLen)
	fout := mustIndexBuffers(t, n, blockLen)
	rep, err := m.IndexFlat(fin, fout, opts...)
	if err != nil {
		t.Fatalf("IndexFlat on %s: %v", backend, err)
	}
	return fout, rep
}

func runConcatFlatOn(t *testing.T, backend Backend, n, k, blockLen int, opts ...CollectiveOption) (*Buffers, *Report) {
	t.Helper()
	m := MustNewMachine(n, Ports(k), WithTransport(backend))
	fin := flatConcatInput(t, n, blockLen)
	fout := mustIndexBuffers(t, n, blockLen)
	rep, err := m.ConcatFlat(fin, fout, opts...)
	if err != nil {
		t.Fatalf("ConcatFlat on %s: %v", backend, err)
	}
	return fout, rep
}

func compareBackends(t *testing.T, n int, chanOut, slotOut *Buffers, chanRep, slotRep *Report) {
	t.Helper()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !bytes.Equal(chanOut.Block(i, j), slotOut.Block(i, j)) {
				t.Fatalf("out[%d][%d]: chan %v, slot %v", i, j, chanOut.Block(i, j), slotOut.Block(i, j))
			}
		}
	}
	if chanRep.C1 != slotRep.C1 || chanRep.C2 != slotRep.C2 {
		t.Fatalf("schedule differs: chan (C1=%d, C2=%d), slot (C1=%d, C2=%d)",
			chanRep.C1, chanRep.C2, slotRep.C1, slotRep.C2)
	}
}

// TestBackendEquivalenceIndexFlat sweeps n in 1..16 and k in {1,2,3}:
// IndexFlat must be byte-identical on the chan and slot transports.
func TestBackendEquivalenceIndexFlat(t *testing.T) {
	const blockLen = 3
	for n := 1; n <= 16; n++ {
		for _, k := range []int{1, 2, 3} {
			if k > intmath.Max(1, n-1) {
				continue
			}
			t.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(t *testing.T) {
				optSets := [][]CollectiveOption{nil}
				if n >= 2 {
					optSets = append(optSets, []CollectiveOption{WithRadix(2)}, []CollectiveOption{WithRadix(n)})
				}
				for _, opts := range optSets {
					chanOut, chanRep := runIndexFlatOn(t, BackendChan, n, k, blockLen, opts...)
					slotOut, slotRep := runIndexFlatOn(t, BackendSlot, n, k, blockLen, opts...)
					compareBackends(t, n, chanOut, slotOut, chanRep, slotRep)
				}
			})
		}
	}
}

// TestBackendEquivalenceConcatFlat is the concatenation counterpart of
// TestBackendEquivalenceIndexFlat, including the last-round policies
// whose partitioned areas produce mixed-size rounds.
func TestBackendEquivalenceConcatFlat(t *testing.T) {
	const blockLen = 3
	for n := 1; n <= 16; n++ {
		for _, k := range []int{1, 2, 3} {
			if k > intmath.Max(1, n-1) {
				continue
			}
			t.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(t *testing.T) {
				for _, opts := range [][]CollectiveOption{
					nil,
					{WithLastRoundPolicy(LastRoundMinRounds)},
					{WithLastRoundPolicy(LastRoundMinVolume)},
				} {
					chanOut, chanRep := runConcatFlatOn(t, BackendChan, n, k, blockLen, opts...)
					slotOut, slotRep := runConcatFlatOn(t, BackendSlot, n, k, blockLen, opts...)
					compareBackends(t, n, chanOut, slotOut, chanRep, slotRep)
				}
			})
		}
	}
}

// TestSlotBackendReusedMachine runs many consecutive flat operations of
// varying shapes on one slot-backend machine: pool reuse, drain and the
// per-pair slot rings all get exercised across run boundaries.
func TestSlotBackendReusedMachine(t *testing.T) {
	const n = 9
	m := MustNewMachine(n, Ports(2), WithTransport(BackendSlot))
	for _, blockLen := range []int{32, 1, 128, 8} {
		fin := flatIndexInput(t, n, blockLen)
		fout := mustIndexBuffers(t, n, blockLen)
		if _, err := m.IndexFlat(fin, fout, WithRadix(3)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !bytes.Equal(fout.Block(i, j), fin.Block(j, i)) {
					t.Fatalf("blockLen %d: out[%d][%d] != in[%d][%d]", blockLen, i, j, j, i)
				}
			}
		}
		cin := flatConcatInput(t, n, blockLen)
		cout := mustIndexBuffers(t, n, blockLen)
		if _, err := m.ConcatFlat(cin, cout); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !bytes.Equal(cout.Block(i, j), cin.Block(j, 0)) {
					t.Fatalf("blockLen %d: concat out[%d][%d] != in[%d]", blockLen, i, j, j)
				}
			}
		}
	}
}
