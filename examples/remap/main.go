// Remap: HPF-style array redistribution from (block, *) to (cyclic, *)
// layout via the index operation, the compiler application from
// Section 1.1 of the paper ("the index operation can be used to support
// the remapping of arrays in HPF compilers").
//
// A vector of L = n * n * stride elements is distributed (block):
// processor i owns elements [i*L/n, (i+1)*L/n). The target layout is
// (cyclic) over rows of stride elements: row t goes to processor
// t mod n. Every processor must send a distinct slice of its elements
// to every other processor — an index operation.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"os"

	"bruck"
)

const (
	n      = 8 // processors
	rows   = n * n
	stride = 4 // elements per row
	L      = rows * stride
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run performs the redistribution and verifies the cyclic layout on
// every processor; the integration test drives it in-process.
func run(w io.Writer) error {
	// Global array for verification.
	data := make([]uint32, L)
	for i := range data {
		data[i] = uint32(i * 2718281)
	}
	rowsPer := rows / n // rows per processor in both layouts

	// Block layout: processor i owns rows [i*rowsPer, (i+1)*rowsPer).
	// In the cyclic layout, row t belongs to processor t mod n at local
	// row slot t / n. Block B[i][j] therefore carries all rows of
	// processor i whose destination is processor j, in increasing row
	// order.
	in := make([][][]byte, n)
	for i := 0; i < n; i++ {
		in[i] = make([][]byte, n)
		for j := 0; j < n; j++ {
			var blk []byte
			for t := i * rowsPer; t < (i+1)*rowsPer; t++ {
				if t%n != j {
					continue
				}
				row := make([]byte, stride*4)
				for e := 0; e < stride; e++ {
					binary.LittleEndian.PutUint32(row[e*4:], data[t*stride+e])
				}
				blk = append(blk, row...)
			}
			in[i][j] = blk
		}
	}
	// With rows = n*n, every processor sends exactly rowsPer/n = 1 row
	// to every destination, so blocks are equal-size as the index
	// operation requires.

	m := bruck.MustNewMachine(n)
	r := bruck.OptimalRadix(bruck.SP1, n, stride*4, 1, true)
	out, rep, err := m.Index(in, bruck.WithRadix(r))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "remapped (block,*) -> (cyclic,*): %d rows of %d elements over %d processors\n", rows, stride, n)
	fmt.Fprintf(w, "  tuned power-of-two radix: %d, schedule: %s\n", r, rep)

	// Verify: processor j's cyclic rows are t = j, j+n, j+2n, ...;
	// out[j][i] carries the rows that came from processor i, i.e. the
	// t in that list with t/rowsPer == i, ordered increasingly.
	for j := 0; j < n; j++ {
		for slot := 0; slot < rowsPer; slot++ {
			t := j + slot*n
			src := t / rowsPer
			// Position of row t within block out[j][src]: among rows
			// owned by src destined to j, ordered by t.
			pos := 0
			for tt := src * rowsPer; tt < t; tt++ {
				if tt%n == j {
					pos++
				}
			}
			blk := out[j][src]
			for e := 0; e < stride; e++ {
				got := binary.LittleEndian.Uint32(blk[(pos*stride+e)*4:])
				if got != data[t*stride+e] {
					return fmt.Errorf("processor %d row %d element %d: got %d, want %d",
						j, t, e, got, data[t*stride+e])
				}
			}
		}
	}
	fmt.Fprintln(w, "cyclic layout verified on every processor")
	fmt.Fprintln(w, "ok")
	return nil
}
