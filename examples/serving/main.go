// Serving: a multi-tenant machine driving compiled collective plans in
// a request loop — the shape of a production serving system built on
// the paper's schedules.
//
// A 12-processor machine is partitioned into three disjoint tenant
// groups of four processors. Each tenant's collective is compiled ONCE
// into a Plan (the schedule is a fixed function of (n, k, r), so no
// per-request schedule work remains), and every request wave executes
// all three plans concurrently in a single engine pass with RunPlans —
// per-tenant reports included. The loop verifies every wave against the
// operations' defining permutations and prints the aggregate
// throughput.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"bruck"
)

const (
	tenants  = 3
	perGroup = 4
	blockLen = 32
	waves    = 25
)

func main() {
	m := bruck.MustNewMachine(tenants * perGroup)

	// Carve the machine into disjoint tenant groups and compile each
	// tenant's plan once. Tenants 0 and 1 serve all-to-all personalized
	// traffic (index), tenant 2 serves all-to-all broadcast (concat).
	plans := make([]*bruck.Plan, tenants)
	ins := make([]*bruck.Buffers, tenants)
	outs := make([]*bruck.Buffers, tenants)
	for tenant := 0; tenant < tenants; tenant++ {
		ids := make([]int, perGroup)
		for i := range ids {
			ids[i] = tenant*perGroup + i
		}
		g, err := m.NewGroup(ids)
		if err != nil {
			log.Fatal(err)
		}
		var plan *bruck.Plan
		if tenant < 2 {
			plan, err = m.CompileIndex(blockLen, bruck.OnGroup(g), bruck.WithRadix(2))
			if err == nil {
				ins[tenant], err = bruck.NewIndexBuffers(perGroup, blockLen)
			}
		} else {
			plan, err = m.CompileConcat(blockLen, bruck.OnGroup(g))
			if err == nil {
				ins[tenant], err = bruck.NewConcatBuffers(perGroup, blockLen)
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		if outs[tenant], err = bruck.NewIndexBuffers(perGroup, blockLen); err != nil {
			log.Fatal(err)
		}
		if err := plan.Bind(ins[tenant], outs[tenant]); err != nil {
			log.Fatal(err)
		}
		plans[tenant] = plan
		fmt.Printf("tenant %d: %s plan on processors %v, %d rounds\n",
			tenant, plan.Op(), ids, plan.Rounds())
	}

	// The request loop: refresh every tenant's payload, run all plans in
	// one concurrent pass, verify the results.
	start := time.Now()
	var reports []*bruck.Report
	for wave := 0; wave < waves; wave++ {
		for tenant := 0; tenant < tenants; tenant++ {
			data := ins[tenant].Bytes()
			for x := range data {
				data[x] = byte(wave*31 + tenant*7 + x)
			}
		}
		var err error
		reports, err = m.RunPlans(plans)
		if err != nil {
			log.Fatal(err)
		}
		for tenant := 0; tenant < tenants; tenant++ {
			if err := verify(plans[tenant], ins[tenant], outs[tenant]); err != nil {
				log.Fatalf("wave %d tenant %d: %v", wave, tenant, err)
			}
		}
	}
	elapsed := time.Since(start)

	for tenant, rep := range reports {
		fmt.Printf("tenant %d steady-state schedule: %v\n", tenant, rep)
	}
	fmt.Printf("served %d waves x %d tenants in %v (%.0f collectives/s, simulator wall-clock)\n",
		waves, tenants, elapsed.Round(time.Millisecond),
		float64(waves*tenants)/elapsed.Seconds())
	fmt.Println("ok")
}

// verify checks a wave's output against the operation's definition:
// index delivers out[i][j] = in[j][i], concat delivers out[i][j] =
// in[j].
func verify(plan *bruck.Plan, in, out *bruck.Buffers) error {
	n := in.Procs()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want []byte
			if plan.Op() == "index" {
				want = in.Block(j, i)
			} else {
				want = in.Block(j, 0)
			}
			if !bytes.Equal(out.Block(i, j), want) {
				return fmt.Errorf("out[%d][%d] = %v, want %v", i, j, out.Block(i, j), want)
			}
		}
	}
	return nil
}
