// Serving: a multi-tenant machine driving compiled collective plans in
// a request loop — the shape of a production serving system built on
// the paper's schedules.
//
// A 12-processor machine is partitioned into three disjoint tenant
// groups of four processors. Each tenant's collective is compiled ONCE
// into a Plan (the schedule is a fixed function of (n, k, r) — or, for
// ragged layouts, of the layout — so no per-request schedule work
// remains), and every request wave executes all three plans
// concurrently in a single engine pass with RunPlans — per-tenant
// reports included. Tenants 0 and 1 serve uniform all-to-all
// personalized traffic (index); tenant 2 serves all-to-all broadcast
// with a ragged per-member payload layout (ConcatV, the
// MPI_Allgatherv shape), demonstrating fixed-size and ragged plans
// coexisting in one concurrent pass. The loop verifies every wave
// against the operations' defining permutations and prints the
// aggregate throughput.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"bruck"
)

const (
	tenants  = 3
	perGroup = 4
	blockLen = 32
	waves    = 25
)

// raggedCounts is tenant 2's contribution layout: wildly different
// per-member payloads, including an idle member contributing nothing.
var raggedCounts = []int{96, 0, 8, 40}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run drives the whole serving loop — compile, waves, verification —
// writing the report to w; the in-process test drives it directly.
func run(w io.Writer) error {
	m := bruck.MustNewMachine(tenants * perGroup)

	plans := make([]*bruck.Plan, tenants)
	uniIns := make([]*bruck.Buffers, tenants)
	uniOuts := make([]*bruck.Buffers, tenants)
	var ragIn, ragOut *bruck.RaggedBuffers
	for tenant := 0; tenant < tenants; tenant++ {
		ids := make([]int, perGroup)
		for i := range ids {
			ids[i] = tenant*perGroup + i
		}
		g, err := m.NewGroup(ids)
		if err != nil {
			return err
		}
		var plan *bruck.Plan
		if tenant < 2 {
			plan, err = m.CompileIndex(blockLen, bruck.OnGroup(g), bruck.WithRadix(2))
			if err != nil {
				return err
			}
			if uniIns[tenant], err = bruck.NewIndexBuffers(perGroup, blockLen); err != nil {
				return err
			}
			if uniOuts[tenant], err = bruck.NewIndexBuffers(perGroup, blockLen); err != nil {
				return err
			}
			if err := plan.Bind(uniIns[tenant], uniOuts[tenant]); err != nil {
				return err
			}
		} else {
			layout, lerr := bruck.NewConcatLayout(raggedCounts)
			if lerr != nil {
				return lerr
			}
			plan, err = m.CompileConcatV(layout, bruck.OnGroup(g), bruck.WithAuto(bruck.SP1))
			if err != nil {
				return err
			}
			if ragIn, err = bruck.NewRaggedBuffers(layout); err != nil {
				return err
			}
			if ragOut, err = bruck.NewRaggedBuffers(plan.OutLayout()); err != nil {
				return err
			}
			if err := plan.BindV(ragIn, ragOut); err != nil {
				return err
			}
		}
		plans[tenant] = plan
		fmt.Fprintf(w, "tenant %d: %s plan (%s) on processors %v, %d rounds\n",
			tenant, plan.Op(), plan.Algorithm(), ids, plan.Rounds())
	}

	// The request loop: refresh every tenant's payload, run all plans in
	// one concurrent pass, verify the results.
	//lint:allow detrand wall-clock timing is demo output only; nothing downstream snapshots it
	start := time.Now()
	var reports []*bruck.Report
	for wave := 0; wave < waves; wave++ {
		for tenant := 0; tenant < 2; tenant++ {
			data := uniIns[tenant].Bytes()
			for x := range data {
				data[x] = byte(wave*31 + tenant*7 + x)
			}
		}
		ragData := ragIn.Bytes()
		for x := range ragData {
			ragData[x] = byte(wave*17 + x*3)
		}
		var err error
		reports, err = m.RunPlans(plans)
		if err != nil {
			return err
		}
		for tenant := 0; tenant < 2; tenant++ {
			if err := verifyIndex(uniIns[tenant], uniOuts[tenant]); err != nil {
				return fmt.Errorf("wave %d tenant %d: %w", wave, tenant, err)
			}
		}
		if err := verifyConcatV(ragIn, ragOut); err != nil {
			return fmt.Errorf("wave %d tenant 2: %w", wave, err)
		}
	}
	elapsed := time.Since(start)

	for tenant, rep := range reports {
		fmt.Fprintf(w, "tenant %d steady-state schedule: %v (C2 lower bound %d)\n",
			tenant, rep, rep.C2LowerBound)
	}
	fmt.Fprintf(w, "served %d waves x %d tenants in %v (%.0f collectives/s, simulator wall-clock)\n",
		waves, tenants, elapsed.Round(time.Millisecond),
		float64(waves*tenants)/elapsed.Seconds())
	fmt.Fprintln(w, "ok")
	return nil
}

// verifyIndex checks the index permutation out[i][j] = in[j][i].
func verifyIndex(in, out *bruck.Buffers) error {
	n := in.Procs()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !bytes.Equal(out.Block(i, j), in.Block(j, i)) {
				return fmt.Errorf("out[%d][%d] = %v, want %v", i, j, out.Block(i, j), in.Block(j, i))
			}
		}
	}
	return nil
}

// verifyConcatV checks the ragged concatenation out[i][j] = in[j] at
// each block's true length.
func verifyConcatV(in, out *bruck.RaggedBuffers) error {
	n := in.Layout().Rows()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !bytes.Equal(out.Block(i, j), in.Block(j, 0)) {
				return fmt.Errorf("out[%d][%d] = %v, want %v", i, j, out.Block(i, j), in.Block(j, 0))
			}
		}
	}
	return nil
}
