// Matmul: distributed matrix multiplication using the concatenation
// operation (all-to-all broadcast), an application from Section 1.1 of
// the paper (Johnsson and Ho, "Matrix Multiplication on Boolean Cubes
// Using Generic Communication Primitives").
//
// C = A * B with A, B, C all N x N and partitioned into blocks of rows:
// processor i owns rows i*N/n .. (i+1)*N/n - 1 of every matrix. To
// compute its rows of C, a processor needs its rows of A (local) and
// ALL of B — so the processors first run a concatenation on their row
// blocks of B, then multiply locally.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"bruck"
)

const (
	n = 8  // processors
	N = 32 // matrix dimension
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run performs the distributed multiplication and verifies it against
// the serial product; the integration test drives it in-process.
func run(w io.Writer) error {
	rowsPer := N / n
	var a, b [N][N]float64
	for r := 0; r < N; r++ {
		for c := 0; c < N; c++ {
			a[r][c] = math.Sin(float64(r*N+c)) * 2
			b[r][c] = math.Cos(float64(r-c)) + 0.5
		}
	}

	// Each processor packs its row block of B as one block.
	in := make([][]byte, n)
	for i := 0; i < n; i++ {
		blk := make([]byte, rowsPer*N*8)
		idx := 0
		for r := 0; r < rowsPer; r++ {
			for c := 0; c < N; c++ {
				binary.LittleEndian.PutUint64(blk[idx:], math.Float64bits(b[i*rowsPer+r][c]))
				idx += 8
			}
		}
		in[i] = blk
	}

	m := bruck.MustNewMachine(n, bruck.Ports(2)) // a 2-port machine
	all, rep, err := m.Concat(in)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "allgathered B's row blocks on %d processors (k=2): %s\n", n, rep)

	// Every processor reconstructs the full B and multiplies its rows
	// of A against it.
	var c [N][N]float64
	for i := 0; i < n; i++ {
		var bFull [N][N]float64
		for j := 0; j < n; j++ {
			idx := 0
			for r := 0; r < rowsPer; r++ {
				for col := 0; col < N; col++ {
					bFull[j*rowsPer+r][col] = math.Float64frombits(binary.LittleEndian.Uint64(all[i][j][idx:]))
					idx += 8
				}
			}
		}
		for r := i * rowsPer; r < (i+1)*rowsPer; r++ {
			for col := 0; col < N; col++ {
				sum := 0.0
				for t := 0; t < N; t++ {
					sum += a[r][t] * bFull[t][col]
				}
				c[r][col] = sum
			}
		}
	}

	// Verify against the serial product.
	worst := 0.0
	for r := 0; r < N; r++ {
		for col := 0; col < N; col++ {
			want := 0.0
			for t := 0; t < N; t++ {
				want += a[r][t] * b[t][col]
			}
			if d := math.Abs(c[r][col] - want); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-12 {
		return fmt.Errorf("matmul mismatch: worst error %g", worst)
	}
	fmt.Fprintf(w, "C = A*B (%dx%d) verified, worst element error %.2e\n", N, N, worst)
	fmt.Fprintf(w, "estimated communication time on SP-1: %.1fus\n", rep.Time(bruck.SP1)*1e6)
	fmt.Fprintln(w, "ok")
	return nil
}
