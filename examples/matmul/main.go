// Matmul: distributed matrix multiplication using the concatenation
// operation (all-to-all broadcast), an application from Section 1.1 of
// the paper (Johnsson and Ho, "Matrix Multiplication on Boolean Cubes
// Using Generic Communication Primitives").
//
// C = A * B with A, B, C all N x N and partitioned into blocks of rows:
// processor i owns rows i*N/n .. (i+1)*N/n - 1 of every matrix. To
// compute its rows of C, a processor needs its rows of A (local) and
// ALL of B — so the processors run a concatenation on their row blocks
// of B, then multiply.
//
// The broadcast goes through the non-blocking ConcatAsync front door:
// while the allgather is in flight every processor multiplies against
// the row block of B it already owns (the partial product over its own
// t-range needs no communication), and after Wait it folds in the
// remote blocks. Communication hides behind the local flops instead of
// preceding them — the overlap the async API exists for.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"bruck"
)

const (
	n = 8  // processors
	N = 32 // matrix dimension
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run performs the distributed multiplication and verifies it against
// the serial product; the integration test drives it in-process.
func run(w io.Writer) error {
	rowsPer := N / n
	blockLen := rowsPer * N * 8
	var a, b [N][N]float64
	for r := 0; r < N; r++ {
		for c := 0; c < N; c++ {
			a[r][c] = math.Sin(float64(r*N+c)) * 2
			b[r][c] = math.Cos(float64(r-c)) + 0.5
		}
	}

	// Each processor packs its row block of B as its concat
	// contribution.
	in, err := bruck.NewConcatBuffers(n, blockLen)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		blk := in.Block(i, 0)
		idx := 0
		for r := 0; r < rowsPer; r++ {
			for c := 0; c < N; c++ {
				binary.LittleEndian.PutUint64(blk[idx:], math.Float64bits(b[i*rowsPer+r][c]))
				idx += 8
			}
		}
	}
	out, err := bruck.NewIndexBuffers(n, blockLen)
	if err != nil {
		return err
	}

	m := bruck.MustNewMachine(n, bruck.Ports(2)) // a 2-port machine
	h, err := m.ConcatAsync(in, out)
	if err != nil {
		return err
	}

	// Overlapped with the broadcast: processor i's rows of C get the
	// contribution of its own row block of B (t in [i*rowsPer,
	// (i+1)*rowsPer)), which needs no communication.
	var c [N][N]float64
	for i := 0; i < n; i++ {
		for r := i * rowsPer; r < (i+1)*rowsPer; r++ {
			for col := 0; col < N; col++ {
				sum := 0.0
				for t := i * rowsPer; t < (i+1)*rowsPer; t++ {
					sum += a[r][t] * b[t][col]
				}
				c[r][col] = sum
			}
		}
	}

	rep, err := h.Wait()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "allgathered B's row blocks on %d processors (k=2, async): %s\n", n, rep)

	// After Wait: fold in the remote row blocks from the allgathered
	// output.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				continue // own block already folded in during the overlap
			}
			blk := out.Block(i, j)
			var bBlock [][]float64
			bBlock = make([][]float64, rowsPer)
			idx := 0
			for r := 0; r < rowsPer; r++ {
				bBlock[r] = make([]float64, N)
				for col := 0; col < N; col++ {
					bBlock[r][col] = math.Float64frombits(binary.LittleEndian.Uint64(blk[idx:]))
					idx += 8
				}
			}
			for r := i * rowsPer; r < (i+1)*rowsPer; r++ {
				for col := 0; col < N; col++ {
					sum := 0.0
					for t := 0; t < rowsPer; t++ {
						sum += a[r][j*rowsPer+t] * bBlock[t][col]
					}
					c[r][col] += sum
				}
			}
		}
	}

	// Verify against the serial product.
	worst := 0.0
	for r := 0; r < N; r++ {
		for col := 0; col < N; col++ {
			want := 0.0
			for t := 0; t < N; t++ {
				want += a[r][t] * b[t][col]
			}
			if d := math.Abs(c[r][col] - want); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-12 {
		return fmt.Errorf("matmul mismatch: worst error %g", worst)
	}
	fmt.Fprintf(w, "C = A*B (%dx%d) verified, worst element error %.2e\n", N, N, worst)
	fmt.Fprintf(w, "estimated communication time on SP-1: %.1fus\n", rep.Time(bruck.SP1)*1e6)
	fmt.Fprintln(w, "ok")
	return nil
}
