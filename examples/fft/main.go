// FFT: a distributed FFT whose inter-processor data exchanges are
// index operations, one of the applications cited in Section 1.1 of
// the paper (Johnsson et al., "Computing Fast Fourier Transforms on
// Boolean Cubes and Related Networks").
//
// The transform of length L = n*n is computed with the transpose
// algorithm: viewing the signal as an n x n matrix X[r][c] = x[r*n+c]
// with processor r owning row r,
//
//  1. transpose       — index operation (communication),
//  2. local n-point FFTs over the original row index,
//  3. twiddle factors — local,
//  4. transpose       — index operation (communication),
//  5. local n-point FFTs over the original column index.
//
// Both transposes go through the non-blocking IndexAsync front door,
// and the local work that does not depend on the exchanged data runs
// while the network works — the twiddle table (a pure function of
// indices) overlaps transpose 1, and the direct-DFT reference spectrum
// (a pure function of the input) overlaps transpose 2. That is the
// overlap the paper's C1*beta start-up term prices: communication time
// hidden behind computation instead of added to it.
//
// The result is verified against the direct O(L^2) DFT.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math"
	"math/cmplx"
	"os"

	"bruck"
)

const (
	n            = 8  // processors; transform length is n*n = 64
	complexBytes = 16 // wire size of one complex128
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run computes the distributed FFT and verifies it against the direct
// DFT; the integration test drives it in-process.
func run(w io.Writer) error {
	const L = n * n
	// Input signal; processor r owns x[r*n .. r*n+n-1].
	x := make([]complex128, L)
	for i := range x {
		x[i] = complex(math.Sin(0.1*float64(i))+0.5, math.Cos(0.3*float64(i)))
	}
	local := make([][]complex128, n)
	for r := 0; r < n; r++ {
		local[r] = append([]complex128(nil), x[r*n:(r+1)*n]...)
	}

	m := bruck.MustNewMachine(n)

	// Step 1: transpose, so processor c holds y_c[r] = x[r*n + c].
	// Submitted asynchronously; the twiddle table is computed while the
	// exchange runs.
	wait1, err := transposeAsync(m, local)
	if err != nil {
		return err
	}
	twiddle := make([][]complex128, n) // twiddle[c][u] = e^{-2pi i u c / L}
	for c := 0; c < n; c++ {
		twiddle[c] = make([]complex128, n)
		for u := 0; u < n; u++ {
			twiddle[c][u] = cmplx.Exp(complex(0, -2*math.Pi*float64(u*c)/float64(L)))
		}
	}
	local, rep1, err := wait1()
	if err != nil {
		return err
	}

	// Step 2: local FFT over r: processor c now holds
	// Y[u][c] = sum_r y_c[r] e^{-2pi i u r / n} at local index u.
	for c := 0; c < n; c++ {
		fft(local[c])
	}

	// Step 3: twiddle Z[u][c] = Y[u][c] * e^{-2pi i u c / L}.
	for c := 0; c < n; c++ {
		for u := 0; u < n; u++ {
			local[c][u] *= twiddle[c][u]
		}
	}

	// Step 4: transpose, so processor u holds Z[u][c] over c. The
	// direct-DFT reference spectrum depends only on x, so it overlaps
	// this exchange.
	wait2, err := transposeAsync(m, local)
	if err != nil {
		return err
	}
	want := make([]complex128, L)
	for k := 0; k < L; k++ {
		for t := 0; t < L; t++ {
			want[k] += x[t] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*t)/float64(L)))
		}
	}
	local, rep2, err := wait2()
	if err != nil {
		return err
	}

	// Step 5: local FFT over c: X[u + v*n] = sum_c Z[u][c]
	// e^{-2pi i v c / n} lands on processor u at local index v.
	for u := 0; u < n; u++ {
		fft(local[u])
	}

	got := make([]complex128, L)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			got[u+v*n] = local[u][v]
		}
	}

	worst := 0.0
	for k := 0; k < L; k++ {
		if d := cmplx.Abs(got[k] - want[k]); d > worst {
			worst = d
		}
	}
	if worst > 1e-8 {
		return fmt.Errorf("FFT mismatch: worst coefficient error %g", worst)
	}
	fmt.Fprintf(w, "distributed %d-point FFT on %d processors (async transposes)\n", L, n)
	fmt.Fprintf(w, "  transpose 1: %s\n", rep1)
	fmt.Fprintf(w, "  transpose 2: %s\n", rep2)
	fmt.Fprintf(w, "  worst coefficient error vs direct DFT: %.2e\n", worst)
	fmt.Fprintln(w, "ok")
	return nil
}

// transposeAsync submits the index-operation transpose without
// blocking and returns a wait function that finishes the exchange and
// decodes the result, so the caller can overlap independent local work
// between submit and wait. The flat buffers belong to the running
// operation until the wait function returns.
func transposeAsync(m *bruck.Machine, local [][]complex128) (func() ([][]complex128, *bruck.Report, error), error) {
	in, err := bruck.NewIndexBuffers(n, complexBytes)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			putComplex(in.Block(i, j), local[i][j])
		}
	}
	out, err := bruck.NewIndexBuffers(n, complexBytes)
	if err != nil {
		return nil, err
	}
	h, err := m.IndexAsync(in, out, bruck.WithRadix(2))
	if err != nil {
		return nil, err
	}
	return func() ([][]complex128, *bruck.Report, error) {
		rep, err := h.Wait()
		if err != nil {
			return nil, nil, err
		}
		res := make([][]complex128, n)
		for i := 0; i < n; i++ {
			res[i] = make([]complex128, n)
			for j := 0; j < n; j++ {
				res[i][j] = getComplex(out.Block(i, j))
			}
		}
		return res, rep, nil
	}, nil
}

// fft is an in-place radix-2 Cooley-Tukey FFT; len(a) must be a power
// of two.
func fft(a []complex128) {
	L := len(a)
	if L <= 1 {
		return
	}
	for i, j := 0, 0; i < L; i++ {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
		mask := L >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	for size := 2; size <= L; size <<= 1 {
		half := size / 2
		step := cmplx.Exp(complex(0, -2*math.Pi/float64(size)))
		for start := 0; start < L; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= step
			}
		}
	}
}

func putComplex(buf []byte, v complex128) {
	binary.LittleEndian.PutUint64(buf, math.Float64bits(real(v)))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(imag(v)))
}

func getComplex(buf []byte) complex128 {
	return complex(
		math.Float64frombits(binary.LittleEndian.Uint64(buf)),
		math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
	)
}
