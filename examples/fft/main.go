// FFT: a distributed FFT whose inter-processor data exchanges are
// index operations, one of the applications cited in Section 1.1 of
// the paper (Johnsson et al., "Computing Fast Fourier Transforms on
// Boolean Cubes and Related Networks").
//
// The transform of length L = n*n is computed with the transpose
// algorithm: viewing the signal as an n x n matrix X[r][c] = x[r*n+c]
// with processor r owning row r,
//
//  1. transpose       — index operation (communication),
//  2. local n-point FFTs over the original row index,
//  3. twiddle factors — local,
//  4. transpose       — index operation (communication),
//  5. local n-point FFTs over the original column index.
//
// The result is verified against a direct O(L^2) DFT.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math"
	"math/cmplx"
	"os"

	"bruck"
)

const n = 8 // processors; transform length is n*n = 64

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run computes the distributed FFT and verifies it against the direct
// DFT; the integration test drives it in-process.
func run(w io.Writer) error {
	const L = n * n
	// Input signal; processor r owns x[r*n .. r*n+n-1].
	x := make([]complex128, L)
	for i := range x {
		x[i] = complex(math.Sin(0.1*float64(i))+0.5, math.Cos(0.3*float64(i)))
	}
	local := make([][]complex128, n)
	for r := 0; r < n; r++ {
		local[r] = append([]complex128(nil), x[r*n:(r+1)*n]...)
	}

	m := bruck.MustNewMachine(n)

	// Step 1: transpose, so processor c holds y_c[r] = x[r*n + c].
	local, rep1, err := transpose(m, local)
	if err != nil {
		return err
	}

	// Step 2: local FFT over r: processor c now holds
	// Y[u][c] = sum_r y_c[r] e^{-2pi i u r / n} at local index u.
	for c := 0; c < n; c++ {
		fft(local[c])
	}

	// Step 3: twiddle Z[u][c] = Y[u][c] * e^{-2pi i u c / L}.
	for c := 0; c < n; c++ {
		for u := 0; u < n; u++ {
			local[c][u] *= cmplx.Exp(complex(0, -2*math.Pi*float64(u*c)/float64(L)))
		}
	}

	// Step 4: transpose, so processor u holds Z[u][c] over c.
	local, rep2, err := transpose(m, local)
	if err != nil {
		return err
	}

	// Step 5: local FFT over c: X[u + v*n] = sum_c Z[u][c]
	// e^{-2pi i v c / n} lands on processor u at local index v.
	for u := 0; u < n; u++ {
		fft(local[u])
	}

	got := make([]complex128, L)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			got[u+v*n] = local[u][v]
		}
	}

	// Verify against the direct DFT.
	worst := 0.0
	for k := 0; k < L; k++ {
		var want complex128
		for t := 0; t < L; t++ {
			want += x[t] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*t)/float64(L)))
		}
		if d := cmplx.Abs(got[k] - want); d > worst {
			worst = d
		}
	}
	if worst > 1e-8 {
		return fmt.Errorf("FFT mismatch: worst coefficient error %g", worst)
	}
	fmt.Fprintf(w, "distributed %d-point FFT on %d processors\n", L, n)
	fmt.Fprintf(w, "  transpose 1: %s\n", rep1)
	fmt.Fprintf(w, "  transpose 2: %s\n", rep2)
	fmt.Fprintf(w, "  worst coefficient error vs direct DFT: %.2e\n", worst)
	fmt.Fprintln(w, "ok")
	return nil
}

// transpose exchanges local[i][j] across processors via the index
// operation: afterwards processor i holds the old local[j][i] at
// position j.
func transpose(m *bruck.Machine, local [][]complex128) ([][]complex128, *bruck.Report, error) {
	in := make([][][]byte, n)
	for i := 0; i < n; i++ {
		in[i] = make([][]byte, n)
		for j := 0; j < n; j++ {
			in[i][j] = encodeComplex(local[i][j])
		}
	}
	out, rep, err := m.Index(in, bruck.WithRadix(2))
	if err != nil {
		return nil, nil, err
	}
	res := make([][]complex128, n)
	for i := 0; i < n; i++ {
		res[i] = make([]complex128, n)
		for j := 0; j < n; j++ {
			res[i][j] = decodeComplex(out[i][j])
		}
	}
	return res, rep, nil
}

// fft is an in-place radix-2 Cooley-Tukey FFT; len(a) must be a power
// of two.
func fft(a []complex128) {
	L := len(a)
	if L <= 1 {
		return
	}
	for i, j := 0, 0; i < L; i++ {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
		mask := L >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	for size := 2; size <= L; size <<= 1 {
		half := size / 2
		step := cmplx.Exp(complex(0, -2*math.Pi/float64(size)))
		for start := 0; start < L; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= step
			}
		}
	}
}

func encodeComplex(v complex128) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(real(v)))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(imag(v)))
	return buf
}

func decodeComplex(buf []byte) complex128 {
	return complex(
		math.Float64frombits(binary.LittleEndian.Uint64(buf)),
		math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
	)
}
