// Quickstart: run the two all-to-all operations of the paper on a
// simulated 8-processor machine and print their schedule measures.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"

	"bruck"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes both collectives, their flat-buffer twin and the
// byte-level verifications, writing the narrative to w; the in-process
// test drives it directly.
func run(w io.Writer) error {
	const n = 8
	m := bruck.MustNewMachine(n) // one-port model

	// --- Index (all-to-all personalized communication) ---------------
	// Processor i starts with blocks B[i,0..n-1]; afterwards processor
	// i holds B[0,i], ..., B[n-1,i].
	in := make([][][]byte, n)
	for i := range in {
		in[i] = make([][]byte, n)
		for j := range in[i] {
			in[i][j] = []byte(fmt.Sprintf("B[%d,%d]", i, j))
		}
	}
	out, rep, err := m.Index(in, bruck.WithRadix(2))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "index with r=2 (round-optimal):", rep)
	fmt.Fprintf(w, "  processor 3 now holds: %s %s ... %s\n", out[3][0], out[3][1], out[3][n-1])
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !bytes.Equal(out[i][j], in[j][i]) {
				return fmt.Errorf("verification failed at out[%d][%d]", i, j)
			}
		}
	}

	// The same operation tuned for volume instead of rounds:
	_, repN, err := m.Index(in, bruck.WithRadix(n))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "index with r=n (volume-optimal):", repN)
	fmt.Fprintf(w, "  model times on the SP-1 profile: r=2 %.1fus, r=n %.1fus\n",
		rep.Time(bruck.SP1)*1e6, repN.Time(bruck.SP1)*1e6)

	// --- Concatenation (all-to-all broadcast) -------------------------
	blocksIn := make([][]byte, n)
	for i := range blocksIn {
		blocksIn[i] = []byte(fmt.Sprintf("B[%d]", i))
	}
	all, crep, err := m.Concat(blocksIn)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "concatenation (circulant):", crep)
	fmt.Fprintf(w, "  processor 5 now holds: %s %s ... %s\n", all[5][0], all[5][1], all[5][n-1])
	for i := range all {
		for j := range all[i] {
			if !bytes.Equal(all[i][j], blocksIn[j]) {
				return fmt.Errorf("verification failed at all[%d][%d]", i, j)
			}
		}
	}

	// --- The same index, zero-copy --------------------------------------
	// The flat API runs the identical schedule on contiguous buffers:
	// no per-block allocations, results read through in-place views.
	fin, err := bruck.NewIndexBuffers(n, len(in[0][0]))
	if err != nil {
		return err
	}
	fout, err := bruck.NewIndexBuffers(n, len(in[0][0]))
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			copy(fin.Block(i, j), in[i][j])
		}
	}
	frep, err := m.IndexFlat(fin, fout, bruck.WithRadix(2))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "index with r=2 (flat zero-copy):", frep)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !bytes.Equal(fout.Block(i, j), out[i][j]) {
				return fmt.Errorf("flat/legacy mismatch at out[%d][%d]", i, j)
			}
		}
	}
	fmt.Fprintln(w, "ok")
	return nil
}
