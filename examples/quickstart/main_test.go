package main

import (
	"bytes"
	"testing"
)

// TestRunInProcess executes the example's full pipeline in-process —
// including its byte-level self-verification — so example rot fails
// the ordinary test run, not just the go-run integration test.
func TestRunInProcess(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("ok\n")) {
		t.Errorf("example did not self-verify:\n%s", out.String())
	}
}
