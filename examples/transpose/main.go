// Transpose: distributed matrix transposition via the index operation,
// the canonical application from Section 1.1 of the paper.
//
// An N x N matrix of float64 is partitioned into blocks of rows:
// processor i owns rows i*N/n .. (i+1)*N/n - 1. Transposing the matrix
// requires every processor to exchange an (N/n) x (N/n) tile with every
// other processor — exactly the index communication pattern.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"bruck"
)

const (
	n = 8  // processors
	N = 32 // matrix dimension; rowsPer = N/n rows per processor
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run transposes the distributed matrix and byte-checks every element
// against the serial transpose; the integration test drives it
// in-process.
func run(w io.Writer) error {
	rowsPer := N / n
	// Global matrix for verification; processor i holds rows
	// [i*rowsPer, (i+1)*rowsPer).
	var a [N][N]float64
	for r := 0; r < N; r++ {
		for c := 0; c < N; c++ {
			a[r][c] = float64(r*N+c) + 0.25
		}
	}

	// Build the index input: B[i][j] is the tile of processor i destined
	// for processor j: rows of i, columns [j*rowsPer, (j+1)*rowsPer).
	in := make([][][]byte, n)
	for i := 0; i < n; i++ {
		in[i] = make([][]byte, n)
		for j := 0; j < n; j++ {
			tile := make([]byte, rowsPer*rowsPer*8)
			idx := 0
			for r := 0; r < rowsPer; r++ {
				for c := 0; c < rowsPer; c++ {
					v := a[i*rowsPer+r][j*rowsPer+c]
					binary.LittleEndian.PutUint64(tile[idx:], math.Float64bits(v))
					idx += 8
				}
			}
			in[i][j] = tile
		}
	}

	m := bruck.MustNewMachine(n)
	out, rep, err := m.Index(in, bruck.WithRadix(bruck.OptimalRadix(bruck.SP1, n, rowsPer*rowsPer*8, 1, false)))
	if err != nil {
		return err
	}

	// Reassemble: processor i now holds out[i][j] = tile from processor
	// j, which contains a[j*rowsPer+r][i*rowsPer+c]. Transposing each
	// received tile locally yields rows of the transposed matrix.
	var at [N][N]float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tile := out[i][j]
			idx := 0
			for r := 0; r < rowsPer; r++ {
				for c := 0; c < rowsPer; c++ {
					v := math.Float64frombits(binary.LittleEndian.Uint64(tile[idx:]))
					// v = a[j*rowsPer+r][i*rowsPer+c]; it belongs at
					// at[i*rowsPer+c][j*rowsPer+r].
					at[i*rowsPer+c][j*rowsPer+r] = v
					idx += 8
				}
			}
		}
	}

	for r := 0; r < N; r++ {
		for c := 0; c < N; c++ {
			if at[r][c] != a[c][r] {
				return fmt.Errorf("transpose wrong at (%d,%d): %g != %g", r, c, at[r][c], a[c][r])
			}
		}
	}
	fmt.Fprintf(w, "transposed a %dx%d matrix across %d processors: %s\n", N, N, n, rep)
	fmt.Fprintf(w, "estimated time on SP-1: %.1fus\n", rep.Time(bruck.SP1)*1e6)
	fmt.Fprintln(w, "ok")
	return nil
}
