package main

import (
	"bytes"
	"testing"
)

// TestRunInProcess executes the multi-tenant gradient-averaging loop
// in-process, including its per-step bit-exact verification against
// the serial sum.
func TestRunInProcess(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("ok\n")) {
		t.Errorf("example did not self-verify:\n%s", out.String())
	}
}
