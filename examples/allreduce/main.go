// Allreduce: multi-tenant gradient averaging driven through compiled
// reduction plans — the workload that makes the paper's pair of
// algorithms a production primitive today. Allreduce is the classic
// composition reduce-scatter + allgather: the reduce-scatter phase has
// exactly the data movement of the paper's index operation plus an
// elementwise combine, and the allgather phase is the paper's
// concatenation.
//
// A 12-processor machine is partitioned into two training jobs (tenant
// groups) of different sizes. Each job's gradient allreduce is compiled
// ONCE into a Plan — tenant 0 with the cost-model auto dispatcher over
// the candidate reduce-scatter schedules, tenant 1 pinned to the Bruck
// index schedule at radix 2 — and every training step executes both
// plans concurrently in a single engine pass with RunPlans. Workers
// then divide the summed gradient by the group size locally, which
// turns the sum into the average. Every step is verified against a
// serially computed reference.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"bruck"
)

const (
	nProcs   = 12
	dim      = 64 // gradient elements per worker chunk
	steps    = 20
	blockLen = dim * 4 // float32
)

// tenant is one training job: a compiled allreduce plan over its group
// and the bound gradient buffers.
type tenant struct {
	workers  int
	plan     *bruck.Plan
	in, out  *bruck.Buffers
	gradient [][]float32 // per-worker gradients, refreshed every step
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	m := bruck.MustNewMachine(nProcs, bruck.Ports(2))
	sizes := []int{8, 4}
	tenants := make([]*tenant, len(sizes))
	plans := make([]*bruck.Plan, len(sizes))
	base := 0
	for ti, workers := range sizes {
		ids := make([]int, workers)
		for i := range ids {
			ids[i] = base + i
		}
		base += workers
		g, err := m.NewGroup(ids)
		if err != nil {
			return err
		}
		opts := []bruck.CollectiveOption{
			bruck.OnGroup(g),
			bruck.WithKernel(bruck.ReduceSum, bruck.Float32),
		}
		if ti == 0 {
			opts = append(opts, bruck.WithAuto(bruck.SP1))
		} else {
			opts = append(opts, bruck.WithReduceAlgorithm(bruck.ReduceBruck), bruck.WithRadix(2))
		}
		plan, err := m.CompileReduce(bruck.AllReduceKind, blockLen, opts...)
		if err != nil {
			return err
		}
		in, err := bruck.NewIndexBuffers(workers, blockLen)
		if err != nil {
			return err
		}
		out, err := bruck.NewIndexBuffers(workers, blockLen)
		if err != nil {
			return err
		}
		if err := plan.Bind(in, out); err != nil {
			return err
		}
		tenants[ti] = &tenant{workers: workers, plan: plan, in: in, out: out,
			gradient: make([][]float32, workers)}
		plans[ti] = plan
		fmt.Fprintf(w, "tenant %d: %d workers, %s plan (%s), %d rounds, C2 %dB (lower bound %dB)\n",
			ti, workers, plan.Op(), plan.Algorithm(), plan.Rounds(), plan.PredictedC2(), plan.C2LowerBound())
	}

	var reports []*bruck.Report
	for step := 0; step < steps; step++ {
		for ti, tn := range tenants {
			for wkr := 0; wkr < tn.workers; wkr++ {
				// Deterministic integer-valued "gradients": sums over a
				// group stay exactly representable, so the simulated
				// all-reduction is bit-checkable against the serial sum.
				g := make([]float32, tn.workers*dim)
				for e := range g {
					g[e] = float32((step+ti*3+wkr*7+e)%17 - 8)
				}
				tn.gradient[wkr] = g
				// Worker wkr's chunk j of its local gradient vector.
				for j := 0; j < tn.workers; j++ {
					bruck.PutFloat32s(tn.in.Block(wkr, j), g[j*dim:(j+1)*dim])
				}
			}
		}
		var err error
		reports, err = m.RunPlans(plans)
		if err != nil {
			return err
		}
		for ti, tn := range tenants {
			if err := verifyAverage(tn); err != nil {
				return fmt.Errorf("step %d tenant %d: %w", step, ti, err)
			}
		}
	}

	for ti, rep := range reports {
		fmt.Fprintf(w, "tenant %d steady-state schedule: %v\n", ti, rep)
	}
	fmt.Fprintf(w, "averaged %d gradient steps for %d tenants in one RunPlans pass per step\n", steps, len(tenants))
	fmt.Fprintln(w, "ok")
	return nil
}

// verifyAverage checks every worker's allreduced vector against the
// serial sum, then applies the local averaging division in place — the
// out slab ends each step holding the averaged gradient, no further
// communication needed.
func verifyAverage(tn *tenant) error {
	nw := tn.workers
	want := make([]float32, nw*dim)
	for e := range want {
		for wkr := 0; wkr < nw; wkr++ {
			want[e] += tn.gradient[wkr][e]
		}
	}
	for wkr := 0; wkr < nw; wkr++ {
		for j := 0; j < nw; j++ {
			blk := tn.out.Block(wkr, j)
			got := bruck.Float32s(blk)
			for e, v := range got {
				if v != want[j*dim+e] {
					return fmt.Errorf("worker %d chunk %d element %d: got %g, want %g", wkr, j, e, v, want[j*dim+e])
				}
				got[e] = v / float32(nw)
			}
			bruck.PutFloat32s(blk, got)
		}
	}
	// Spot-check that the slab really holds averages now.
	avg0 := bruck.Float32s(tn.out.Block(0, 0))[0]
	if avg0 != want[0]/float32(nw) {
		return fmt.Errorf("averaging did not land in the output slab: %g != %g", avg0, want[0]/float32(nw))
	}
	return nil
}
