package bruck

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example program and checks it
// self-verifies (each prints "ok" after checking its own output
// against a serial reference). Skipped under -short because it shells
// out to the go tool.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example execution in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	for _, ex := range []string{"quickstart", "transpose", "fft", "matmul", "remap", "serving", "allreduce"} {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+ex)
			cmd.Dir = "."
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", ex, err, out)
			}
			if !strings.Contains(string(out), "ok") {
				t.Errorf("example %s did not self-verify:\n%s", ex, out)
			}
		})
	}
}
