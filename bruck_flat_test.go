package bruck

// Equivalence and allocation-regression tests for the flat zero-copy
// collective paths. The legacy [][][]byte entry points are adapters
// over the flat paths, so these tests pin down two properties the
// refactor promised: (1) both layouts produce byte-identical results
// and identical schedules, and (2) the flat path allocates at most half
// of what the legacy path does (in practice far less; see README.md).

import (
	"bytes"
	"fmt"
	"testing"

	"bruck/internal/buffers"
	"bruck/internal/intmath"
)

// flatIndexInput builds the flat twin of benchIndexInput(n, blockLen).
func flatIndexInput(t testing.TB, n, blockLen int) *Buffers {
	t.Helper()
	fin, err := buffers.FromMatrix(benchIndexInput(n, blockLen))
	if err != nil {
		t.Fatal(err)
	}
	return fin
}

// flatConcatInput builds the flat twin of benchConcatInput(n, blockLen).
func flatConcatInput(t testing.TB, n, blockLen int) *Buffers {
	t.Helper()
	fin, err := buffers.FromVector(benchConcatInput(n, blockLen))
	if err != nil {
		t.Fatal(err)
	}
	return fin
}

func mustIndexBuffers(t testing.TB, n, blockLen int) *Buffers {
	t.Helper()
	out, err := NewIndexBuffers(n, blockLen)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// checkIndexEquivalence runs one option set through both layouts on
// machine m and asserts byte-identical results and identical measures.
func checkIndexEquivalence(t *testing.T, m *Machine, n, blockLen int, opts ...CollectiveOption) {
	t.Helper()
	in := benchIndexInput(n, blockLen)
	legacy, legacyRep, err := m.Index(in, opts...)
	if err != nil {
		t.Fatalf("legacy index: %v", err)
	}
	fin := flatIndexInput(t, n, blockLen)
	fout := mustIndexBuffers(t, n, blockLen)
	flatRep, err := m.IndexFlat(fin, fout, opts...)
	if err != nil {
		t.Fatalf("flat index: %v", err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !bytes.Equal(legacy[i][j], fout.Block(i, j)) {
				t.Fatalf("out[%d][%d]: legacy %v, flat %v", i, j, legacy[i][j], fout.Block(i, j))
			}
		}
	}
	if legacyRep.C1 != flatRep.C1 || legacyRep.C2 != flatRep.C2 {
		t.Fatalf("schedule differs: legacy (C1=%d, C2=%d), flat (C1=%d, C2=%d)",
			legacyRep.C1, legacyRep.C2, flatRep.C1, flatRep.C2)
	}
}

func checkConcatEquivalence(t *testing.T, m *Machine, n, blockLen int, opts ...CollectiveOption) {
	t.Helper()
	in := benchConcatInput(n, blockLen)
	legacy, legacyRep, err := m.Concat(in, opts...)
	if err != nil {
		t.Fatalf("legacy concat: %v", err)
	}
	fin := flatConcatInput(t, n, blockLen)
	fout := mustIndexBuffers(t, n, blockLen)
	flatRep, err := m.ConcatFlat(fin, fout, opts...)
	if err != nil {
		t.Fatalf("flat concat: %v", err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !bytes.Equal(legacy[i][j], fout.Block(i, j)) {
				t.Fatalf("out[%d][%d]: legacy %v, flat %v", i, j, legacy[i][j], fout.Block(i, j))
			}
		}
	}
	if legacyRep.C1 != flatRep.C1 || legacyRep.C2 != flatRep.C2 {
		t.Fatalf("schedule differs: legacy (C1=%d, C2=%d), flat (C1=%d, C2=%d)",
			legacyRep.C1, legacyRep.C2, flatRep.C1, flatRep.C2)
	}
}

// TestFlatIndexMatchesLegacy sweeps n in 1..16 and k in {1,2,3} across
// the index algorithms and radices.
func TestFlatIndexMatchesLegacy(t *testing.T) {
	const blockLen = 3
	for n := 1; n <= 16; n++ {
		for _, k := range []int{1, 2, 3} {
			if k > intmath.Max(1, n-1) {
				continue
			}
			t.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(t *testing.T) {
				m := MustNewMachine(n, Ports(k))
				// Default options, the radix extremes, and the baselines.
				checkIndexEquivalence(t, m, n, blockLen)
				if n >= 2 {
					checkIndexEquivalence(t, m, n, blockLen, WithRadix(2))
					checkIndexEquivalence(t, m, n, blockLen, WithRadix(n))
				}
				checkIndexEquivalence(t, m, n, blockLen, WithIndexAlgorithm(IndexDirect))
				if intmath.IsPow(2, n) {
					checkIndexEquivalence(t, m, n, blockLen, WithIndexAlgorithm(IndexPairwiseXOR))
				}
				if mixed := OptimalRadixSchedule(SP1, n, blockLen, k); len(mixed) > 0 {
					checkIndexEquivalence(t, m, n, blockLen, WithRadices(mixed))
				}
				if n <= 6 {
					checkIndexEquivalence(t, m, n, blockLen, WithRadix(2), WithoutPacking())
				}
			})
		}
	}
}

// TestFlatConcatMatchesLegacy sweeps n in 1..16 and k in {1,2,3} across
// the concatenation algorithms and last-round policies.
func TestFlatConcatMatchesLegacy(t *testing.T) {
	const blockLen = 3
	for n := 1; n <= 16; n++ {
		for _, k := range []int{1, 2, 3} {
			if k > intmath.Max(1, n-1) {
				continue
			}
			t.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(t *testing.T) {
				m := MustNewMachine(n, Ports(k))
				checkConcatEquivalence(t, m, n, blockLen)
				checkConcatEquivalence(t, m, n, blockLen, WithLastRoundPolicy(LastRoundMinRounds))
				checkConcatEquivalence(t, m, n, blockLen, WithLastRoundPolicy(LastRoundMinVolume))
				checkConcatEquivalence(t, m, n, blockLen, WithConcatAlgorithm(ConcatRing))
				checkConcatEquivalence(t, m, n, blockLen, WithConcatAlgorithm(ConcatFolklore))
				if intmath.IsPow(2, n) {
					checkConcatEquivalence(t, m, n, blockLen, WithConcatAlgorithm(ConcatRecursiveDoubling))
				}
			})
		}
	}
}

// TestFlatOnGroup checks the flat paths on a strict subgroup of the
// machine, where group ranks differ from engine ranks.
func TestFlatOnGroup(t *testing.T) {
	const n, blockLen = 5, 4
	m := MustNewMachine(9)
	g, err := m.NewGroup([]int{7, 2, 5, 0, 8})
	if err != nil {
		t.Fatal(err)
	}

	in := benchIndexInput(n, blockLen)
	legacy, _, err := m.Index(in, OnGroup(g))
	if err != nil {
		t.Fatal(err)
	}
	fin := flatIndexInput(t, n, blockLen)
	fout := mustIndexBuffers(t, n, blockLen)
	if _, err := m.IndexFlat(fin, fout, OnGroup(g)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !bytes.Equal(legacy[i][j], fout.Block(i, j)) {
				t.Fatalf("group index out[%d][%d]: legacy %v, flat %v", i, j, legacy[i][j], fout.Block(i, j))
			}
		}
	}

	cin := benchConcatInput(n, blockLen)
	clegacy, _, err := m.Concat(cin, OnGroup(g))
	if err != nil {
		t.Fatal(err)
	}
	cfin := flatConcatInput(t, n, blockLen)
	cfout := mustIndexBuffers(t, n, blockLen)
	if _, err := m.ConcatFlat(cfin, cfout, OnGroup(g)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !bytes.Equal(clegacy[i][j], cfout.Block(i, j)) {
				t.Fatalf("group concat out[%d][%d]: legacy %v, flat %v", i, j, clegacy[i][j], cfout.Block(i, j))
			}
		}
	}
}

// TestFlatShapeErrors checks that malformed flat buffers are rejected
// up front rather than corrupting a run.
func TestFlatShapeErrors(t *testing.T) {
	m := MustNewMachine(4)
	good := mustIndexBuffers(t, 4, 8)
	wrongProcs := mustIndexBuffers(t, 5, 8)
	wrongLen := mustIndexBuffers(t, 4, 7)
	if _, err := m.IndexFlat(wrongProcs, mustIndexBuffers(t, 4, 8)); err == nil {
		t.Error("IndexFlat accepted a 5-processor input on a 4-processor machine")
	}
	if _, err := m.IndexFlat(good, wrongLen); err == nil {
		t.Error("IndexFlat accepted mismatched block lengths")
	}
	if _, err := m.IndexFlat(good, good); err == nil {
		t.Error("IndexFlat accepted aliased input and output")
	}
	if _, err := m.IndexFlat(nil, good); err == nil {
		t.Error("IndexFlat accepted a nil input")
	}
	cin, err := NewConcatBuffers(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ConcatFlat(cin, wrongLen); err == nil {
		t.Error("ConcatFlat accepted mismatched block lengths")
	}
	if _, err := m.ConcatFlat(good, mustIndexBuffers(t, 4, 8)); err == nil {
		t.Error("ConcatFlat accepted an index-shaped input")
	}
}

// TestFlatIndexAllocs locks in the headline of the flat refactor: the
// zero-copy index path allocates at most half of what the legacy
// block-matrix path does (the acceptance bound; the measured reduction
// is ~70% at this size and grows with n).
func TestFlatIndexAllocs(t *testing.T) {
	const n, blockLen, runs = 16, 32, 10
	m := MustNewMachine(n)
	in := benchIndexInput(n, blockLen)
	fin := flatIndexInput(t, n, blockLen)
	fout := mustIndexBuffers(t, n, blockLen)

	var opErr error
	legacy := testing.AllocsPerRun(runs, func() {
		if _, _, err := m.Index(in, WithRadix(2)); err != nil {
			opErr = err
		}
	})
	flat := testing.AllocsPerRun(runs, func() {
		if _, err := m.IndexFlat(fin, fout, WithRadix(2)); err != nil {
			opErr = err
		}
	})
	if opErr != nil {
		t.Fatal(opErr)
	}
	if flat > legacy/2 {
		t.Errorf("flat index allocates %.0f/op, legacy %.0f/op; want flat <= legacy/2", flat, legacy)
	}
}

// TestFlatConcatAllocs is the concatenation counterpart of
// TestFlatIndexAllocs.
func TestFlatConcatAllocs(t *testing.T) {
	const n, blockLen, runs = 16, 32, 10
	m := MustNewMachine(n)
	in := benchConcatInput(n, blockLen)
	fin := flatConcatInput(t, n, blockLen)
	fout := mustIndexBuffers(t, n, blockLen)

	var opErr error
	legacy := testing.AllocsPerRun(runs, func() {
		if _, _, err := m.Concat(in); err != nil {
			opErr = err
		}
	})
	flat := testing.AllocsPerRun(runs, func() {
		if _, err := m.ConcatFlat(fin, fout); err != nil {
			opErr = err
		}
	})
	if opErr != nil {
		t.Fatal(opErr)
	}
	if flat > legacy/2 {
		t.Errorf("flat concat allocates %.0f/op, legacy %.0f/op; want flat <= legacy/2", flat, legacy)
	}
}

// TestFlatRepeatedRuns reuses one machine and one output buffer across
// operations with different shapes, exercising the processor-local
// buffer pools' size adaptation.
func TestFlatRepeatedRuns(t *testing.T) {
	const n = 8
	m := MustNewMachine(n, Ports(2))
	for _, blockLen := range []int{64, 1, 256, 16} {
		fin := flatIndexInput(t, n, blockLen)
		fout := mustIndexBuffers(t, n, blockLen)
		if _, err := m.IndexFlat(fin, fout, WithRadix(3)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !bytes.Equal(fout.Block(i, j), fin.Block(j, i)) {
					t.Fatalf("blockLen %d: out[%d][%d] != in[%d][%d]", blockLen, i, j, j, i)
				}
			}
		}
	}
}
