// Package bruck is a Go reproduction of "Efficient Algorithms for
// All-to-All Communications in Multiport Message-Passing Systems" by
// Bruck, Ho, Kipnis, Upfal and Weathersby (SPAA 1994; IEEE TPDS 8(11),
// 1997).
//
// It provides the two all-to-all collective operations of the paper on
// a simulated multiport fully connected message-passing machine:
//
//   - Index — all-to-all personalized communication (MPI_Alltoall),
//     via the radix-r "Bruck algorithm" family with its C1/C2
//     trade-off, plus direct-exchange and pairwise-XOR baselines;
//   - Concat — all-to-all broadcast (MPI_Allgather), via the optimal
//     circulant-graph algorithm with its table-partitioned last round,
//     plus folklore, ring and recursive-doubling baselines;
//
// together with one-to-all primitives (Broadcast, Gather, Scatter),
// machine cost models (the paper's linear model with the measured IBM
// SP-1 parameters), closed-form complexity predictions, lower bounds,
// and radix auto-tuning.
//
// # Quick start
//
//	m, _ := bruck.NewMachine(8)                    // 8 processors, 1 port
//	in := ...                                      // in[i][j] = block B[i,j]
//	out, rep, err := m.Index(in, bruck.WithRadix(2))
//	// out[i][j] == in[j][i]; rep.C1, rep.C2 are the paper's measures
//
// The machine is a simulation: one goroutine per processor, channels
// for messages, with the k-port constraint enforced per communication
// round. Complexity measures C1 (rounds) and C2 (sum over rounds of the
// largest message) are recorded from the actual schedule; Report.Time
// evaluates them under a machine profile such as bruck.SP1.
package bruck

import (
	"fmt"
	"sync/atomic"

	"bruck/internal/blocks"
	"bruck/internal/buffers"
	"bruck/internal/collective"
	"bruck/internal/costmodel"
	"bruck/internal/mpsim"
	"bruck/internal/partition"
)

// Machine is a simulated n-processor multiport fully connected
// message-passing system. Create one with NewMachine; a Machine may run
// any number of consecutive collective operations but is not safe for
// concurrent use.
//
// Every collective call is routed through an internal plan cache keyed
// by (operation, group, options, block size): the first call with a
// configuration compiles its schedule, later calls replay the compiled
// Plan with zero schedule recomputation. CompileIndex and CompileConcat
// expose the plans directly, and RunPlans executes plans on disjoint
// groups concurrently. The cache keys groups by pointer, so reuse the
// *Group value (World, or a stored NewGroup result) to hit it.
type Machine struct {
	engine *mpsim.Engine
	world  *Group
	plans  *collective.PlanCache
	// topo is the machine's two-level topology (WithTopology), nil on a
	// flat machine. It tags every simulated message with its link class,
	// licenses Hierarchical() schedules, and turns WithAuto into the
	// flat-vs-hierarchical dispatch.
	topo *costmodel.Topology
	// inflight marks a pending asynchronous operation (IndexAsync and
	// friends): a second Async call before the first Handle's Wait is
	// rejected. Blocking calls are not guarded — the Machine's
	// no-concurrent-use contract already covers them.
	inflight atomic.Bool
}

// MachineOption configures NewMachine.
type MachineOption func(*machineConfig)

type machineConfig struct {
	ports    int
	validate bool
	record   bool
	backend  Backend
	chaos    ChaosConfig
	topo     *costmodel.Topology
}

// Backend names a simulator message-transport implementation. The
// paper's schedules are transport-agnostic, so every backend produces
// byte-identical results on identical schedules; backends trade
// simulator wall-clock speed against blocking behaviour.
type Backend = mpsim.Backend

const (
	// BackendChan (default) delivers messages over per-pair buffered Go
	// channels. Blocked processors park for free; best for debugging and
	// for machines much wider than the host.
	BackendChan = mpsim.BackendChan
	// BackendSlot delivers messages through lock-free shared-memory slot
	// rings, the fast backend for throughput work on machines that fit
	// the host's cores.
	BackendSlot = mpsim.BackendSlot
	// BackendChaos wraps chan or slot with seeded adversarial timing —
	// per-link latency jitter, cross-link reordering and straggler
	// processors — for proving schedules byte-correct under timing
	// perturbation. Configure it with WithChaos.
	BackendChaos = mpsim.BackendChaos
)

// ChaosConfig configures the chaos transport: the wrapped inner
// backend, the jitter seed and ceiling, and the straggler set. The zero
// value wraps BackendChan with default jitter. See mpsim.ChaosConfig.
type ChaosConfig = mpsim.ChaosConfig

// ParseBackend converts a command-line string ("chan", "slot",
// "chaos") into a Backend.
func ParseBackend(s string) (Backend, error) { return mpsim.ParseBackend(s) }

// Ports sets the number of communication ports k per processor: in each
// round a processor can send k messages and receive k messages
// (1 <= k <= n-1). The default is 1, the one-port model.
func Ports(k int) MachineOption {
	return func(c *machineConfig) { c.ports = k }
}

// Validate enables (default) or disables runtime schedule validation:
// the k-port constraint, round alignment of matching sends and
// receives, and schedule uniformity.
func Validate(on bool) MachineOption {
	return func(c *machineConfig) { c.validate = on }
}

// RecordEvents makes the machine log every message of each operation
// (round, endpoints, size), enabling CriticalPathTime. Off by default.
func RecordEvents() MachineOption {
	return func(c *machineConfig) { c.record = true }
}

// WithTransport selects the simulator's message transport backend:
// BackendChan (default), BackendSlot, or BackendChaos with its zero
// configuration (use WithChaos to configure it).
func WithTransport(b Backend) MachineOption {
	return func(c *machineConfig) { c.backend = b }
}

// WithChaos selects the chaos transport with the given configuration:
// the machine runs on cfg.Inner (chan or slot) with seeded adversarial
// timing injected on every link. Operation results — and their Reports'
// C1/C2 — are byte-identical to the plain backends'; only wall-clock
// timing changes.
func WithChaos(cfg ChaosConfig) MachineOption {
	return func(c *machineConfig) {
		c.backend = BackendChaos
		c.chaos = cfg
	}
}

// NewMachine creates a simulated machine with n processors.
func NewMachine(n int, opts ...MachineOption) (*Machine, error) {
	cfg := machineConfig{ports: 1, validate: true, backend: BackendChan}
	for _, opt := range opts {
		opt(&cfg)
	}
	eopts := []mpsim.Option{mpsim.Ports(cfg.ports), mpsim.Validate(cfg.validate),
		mpsim.Record(cfg.record), mpsim.WithTransport(cfg.backend)}
	if cfg.backend == BackendChaos {
		eopts = append(eopts, mpsim.WithChaos(cfg.chaos))
	}
	if cfg.topo != nil {
		if err := cfg.topo.Validate(); err != nil {
			return nil, err
		}
		if cfg.topo.N() != n {
			return nil, fmt.Errorf("bruck: topology covers %d processors, machine has %d", cfg.topo.N(), n)
		}
		eopts = append(eopts, mpsim.WithTopology(cfg.topo.GroupAssignment()))
	}
	e, err := mpsim.New(n, eopts...)
	if err != nil {
		return nil, err
	}
	return &Machine{engine: e, world: mpsim.WorldGroup(n), plans: collective.NewPlanCache(), topo: cfg.topo}, nil
}

// CriticalPathTime evaluates the most recent operation's schedule under
// the linear model with per-processor clocks (the LogP-flavored
// accounting the paper contrasts with T = C1*beta + C2*tau in Section
// 1.2). It requires a machine created with RecordEvents and at least
// one completed operation. For the paper's symmetric schedules it
// equals Report.Time; for skewed schedules (e.g. the folklore
// baseline) it is smaller.
func (m *Machine) CriticalPathTime(p Profile) (float64, error) {
	metrics := m.engine.Metrics()
	if metrics == nil {
		if m.engine.ProgramsInLastRun() > 1 {
			return 0, fmt.Errorf("bruck: CriticalPathTime is unavailable after RunPlans (per-plan schedules; use the returned Reports)")
		}
		return 0, fmt.Errorf("bruck: CriticalPathTime before any operation")
	}
	events := metrics.Events()
	if events == nil {
		return 0, fmt.Errorf("bruck: CriticalPathTime requires a machine created with RecordEvents")
	}
	return costmodel.CriticalPath(p, m.engine.N(), events)
}

// CriticalPathTopoTime is CriticalPathTime under the machine's
// topology: each message is priced by its own link's profile — the
// pair override if one exists, otherwise the link class — so a
// hierarchical schedule's intra phases run on the fast clock. It
// requires a machine created with WithTopology and RecordEvents and at
// least one completed operation.
func (m *Machine) CriticalPathTopoTime() (float64, error) {
	if m.topo == nil {
		return 0, fmt.Errorf("bruck: CriticalPathTopoTime requires a machine created with WithTopology")
	}
	metrics := m.engine.Metrics()
	if metrics == nil {
		if m.engine.ProgramsInLastRun() > 1 {
			return 0, fmt.Errorf("bruck: CriticalPathTopoTime is unavailable after RunPlans (per-plan schedules; use the returned Reports)")
		}
		return 0, fmt.Errorf("bruck: CriticalPathTopoTime before any operation")
	}
	events := metrics.Events()
	if events == nil {
		return 0, fmt.Errorf("bruck: CriticalPathTopoTime requires a machine created with RecordEvents")
	}
	return costmodel.CriticalPathTopo(m.topo, m.engine.N(), events)
}

// N returns the number of processors.
func (m *Machine) N() int { return m.engine.N() }

// Ports returns the port count k.
func (m *Machine) Ports() int { return m.engine.Ports() }

// Transport returns the machine's transport backend.
func (m *Machine) Transport() Backend { return m.engine.Transport() }

// Topology returns the machine's topology, nil for a flat machine.
func (m *Machine) Topology() *Topology { return m.topo }

// Group names an ordered subset of processors, like an MPI group; all
// collective operations accept one via OnGroup. Group ranks are the
// positions in the id list.
type Group = mpsim.Group

// NewGroup creates a group from distinct processor ids of this machine.
func (m *Machine) NewGroup(ids []int) (*Group, error) {
	return mpsim.NewGroup(ids, m.engine.N())
}

// World returns the group of all processors in rank order.
func (m *Machine) World() *Group { return m.world }

// Report is the communication summary of one collective operation, in
// the paper's complexity measures: C1 rounds and C2 bytes of data
// volume (sum over rounds of the round's largest message).
type Report = collective.Result

// Profile is a machine model under the paper's linear cost model:
// sending an m-byte message costs Beta + m*Tau seconds.
type Profile = costmodel.Profile

// SP1 is the 64-node IBM SP-1 profile measured in Section 3.5 of the
// paper (start-up ~29us, ~8.5 Mbytes/s point-to-point bandwidth).
var SP1 = costmodel.SP1

// Topology describes a two-level machine: named groups of processors
// ("nodes", "racks") with a fast intra-group profile, a slower
// inter-group profile, and optional per-pair overrides. Attach one to
// a machine with WithTopology.
type Topology = costmodel.Topology

// NewTopology builds a validated two-level topology: groups[i]
// consecutive processors form group i, intra prices links inside a
// group and inter prices links between groups.
func NewTopology(groups []int, intra, inter Profile) (*Topology, error) {
	return costmodel.NewTopology(groups, intra, inter)
}

// ParseTopology parses the command-line topology syntax
// "<groups>x<size>[:beta,tau/beta,tau]" or
// "<size1>,<size2>,...[:beta,tau/beta,tau]"; without explicit
// profiles the intra profile defaults to SP1 and the inter profile to
// SP1 scaled by DefaultInterRatio.
func ParseTopology(s string) (*Topology, error) { return costmodel.ParseTopology(s) }

// ScaledProfile returns p with both parameters scaled by f — the
// quick way to build an "inter links are f times slower" profile.
func ScaledProfile(p Profile, f float64) Profile { return costmodel.Scaled(p, f) }

// DefaultInterRatio is the inter/intra cost ratio ParseTopology
// assumes when the spec names no profiles.
const DefaultInterRatio = costmodel.DefaultInterRatio

// WithTopology attaches a two-level topology to the machine. The
// topology must cover exactly the machine's n processors. Every
// simulated message is then tagged with its link class — Reports on
// hierarchical plans split C1/C2 per level (Report.Intra/Inter) — and
// the machine accepts Hierarchical() schedules; WithAuto on the
// fixed-size operations becomes the flat-vs-hierarchical dispatch.
func WithTopology(t *Topology) MachineOption {
	return func(c *machineConfig) { c.topo = t }
}

// Common algorithm identifiers, re-exported from the implementation
// package for use with the option setters.
const (
	// IndexBruck is the paper's radix-r index algorithm (default).
	IndexBruck = collective.IndexBruck
	// IndexDirect is the direct-exchange baseline (volume-optimal,
	// round-maximal).
	IndexDirect = collective.IndexDirect
	// IndexPairwiseXOR is the hypercube pairwise-exchange baseline
	// (power-of-two sizes).
	IndexPairwiseXOR = collective.IndexPairwiseXOR

	// ConcatCirculant is the paper's circulant-graph concatenation
	// algorithm (default).
	ConcatCirculant = collective.ConcatCirculant
	// ConcatFolklore is the gather+broadcast baseline.
	ConcatFolklore = collective.ConcatFolklore
	// ConcatRing is the ring baseline.
	ConcatRing = collective.ConcatRing
	// ConcatRecursiveDoubling is the hypercube baseline (power-of-two
	// sizes).
	ConcatRecursiveDoubling = collective.ConcatRecursiveDoubling
)

// Last-round policies for the circulant concatenation in the special
// range where C1- and C2-optimality conflict (Proposition 4.2).
const (
	// LastRoundPreferOptimal uses the single optimal round whenever it
	// exists (default).
	LastRoundPreferOptimal = partition.PreferOptimal
	// LastRoundMinRounds keeps C1 optimal at a C2 penalty of at most
	// b-1 bytes.
	LastRoundMinRounds = partition.MinRounds
	// LastRoundMinVolume keeps C2 within one byte of optimal at a cost
	// of one extra round.
	LastRoundMinVolume = partition.MinVolume
)

// CollectiveOption configures one collective call.
type CollectiveOption func(*callConfig)

type callConfig struct {
	group     *Group
	indexOpt  collective.IndexOptions
	radices   []int
	concatOpt collective.ConcatOptions
	reduceAlg collective.ReduceAlgorithm
	kernelOp  ReduceOp
	kernelTyp DataType
	kernelSet bool
	combine   CombineFunc
	auto      *Profile
	hier      bool
	hierOpt   collective.HierOptions
}

// OnGroup restricts the operation to an ordered subset of processors;
// inputs and outputs are indexed by group rank. The default is the
// whole machine.
func OnGroup(g *Group) CollectiveOption {
	return func(c *callConfig) { c.group = g }
}

// WithRadix sets the radix r of the Bruck index algorithm
// (2 <= r <= n). Smaller radices minimize rounds (r = k+1 is
// round-optimal), larger radices minimize data volume (r = n is
// volume-optimal). The default is k+1.
func WithRadix(r int) CollectiveOption {
	return func(c *callConfig) { c.indexOpt.Radix = r }
}

// WithRadices runs the mixed-radix generalization of the index
// algorithm: subphase i uses radix radices[i]. Every radix must be at
// least 2 and the product must reach n. OptimalRadixSchedule computes
// the model-optimal vector. Overrides WithRadix and WithIndexAlgorithm.
func WithRadices(radices []int) CollectiveOption {
	return func(c *callConfig) { c.radices = append([]int(nil), radices...) }
}

// WithIndexAlgorithm selects the index schedule (IndexBruck,
// IndexDirect, IndexPairwiseXOR).
func WithIndexAlgorithm(a collective.IndexAlgorithm) CollectiveOption {
	return func(c *callConfig) { c.indexOpt.Algorithm = a }
}

// WithoutPacking disables message packing in the Bruck index algorithm
// (an ablation: every selected block travels in its own round).
func WithoutPacking() CollectiveOption {
	return func(c *callConfig) { c.indexOpt.NoPack = true }
}

// AutoSegments, passed to WithSegments, lets the SP-1 cost model pick
// the pipeline segment count per configuration.
const AutoSegments = collective.AutoSegments

// WithSegments pipelines the Bruck index schedule — and the ReduceBruck
// reduce-scatter phase of the reductions — over s segments: each block
// splits into s byte spans that stream through the round structure one
// merged round apart, so round r of segment i overlaps round r+1 of
// segment i-1 and the schedule drains in rounds + s - 1 merged rounds.
// Pipelining trades extra rounds for smaller per-round messages and an
// ownership-transfer execution path with half the copies per message,
// which wins on bandwidth-bound configurations (large blocks); the
// crossover against the monolithic schedule is where `bruckctl run
// -crossover-segments` and the cost model (SegmentedIndexCost) point.
//
// s = 0 or 1 runs the monolithic schedule; AutoSegments picks by cost
// model. Only the packed uniform Bruck schedules pipeline — baselines,
// the noPack ablation, mixed-radix, layout (V) plans and the circulant
// concatenation always run monolithic, and the compiler clamps s to the
// block size and the round count.
func WithSegments(s int) CollectiveOption {
	return func(c *callConfig) { c.indexOpt.Segments = s }
}

// WithConcatAlgorithm selects the concatenation schedule
// (ConcatCirculant, ConcatFolklore, ConcatRing,
// ConcatRecursiveDoubling).
func WithConcatAlgorithm(a collective.ConcatAlgorithm) CollectiveOption {
	return func(c *callConfig) { c.concatOpt.Algorithm = a }
}

// WithLastRoundPolicy selects the circulant concatenation's behaviour
// in the special range (LastRoundPreferOptimal, LastRoundMinRounds,
// LastRoundMinVolume).
func WithLastRoundPolicy(p partition.Policy) CollectiveOption {
	return func(c *callConfig) { c.concatOpt.LastRound = p }
}

// WithAuto makes the ragged-layout operations (IndexV, ConcatV and
// their Flat/Compile variants) and the reductions (ReduceScatter,
// AllReduce and their Flat/Compile variants) pick the algorithm — and,
// where applicable, the radix — by evaluating the linear cost model
// T = C1*Beta + C2*Tau over the compiled candidate plans: for the index
// the Bruck family at several radices (on padded slots) against the
// padding-free direct exchange, for the concatenation the padded
// circulant schedule against the exact-extent ring, and for the
// reductions the ring against recursive halving (power-of-two groups)
// and the Bruck index schedule at the candidate radices. It overrides
// WithRadix/WithIndexAlgorithm/WithConcatAlgorithm/WithReduceAlgorithm
// on those operations and is ignored by the fixed-size index and
// concatenation (tune those with OptimalRadix).
// On a machine created with WithTopology (nontrivial), WithAuto
// additionally governs the fixed-size Index, Concat and AllReduce: the
// dispatch compiles flat and hierarchical candidates, prices each with
// the topology's per-class profiles (flat schedules pay the
// inter-group profile on every round; hierarchical ones pay each
// phase's class), and runs the winner. The verdict is memoized under
// the topology's digest, so repeated auto calls cost one cache lookup.
func WithAuto(p Profile) CollectiveOption {
	return func(c *callConfig) { prof := p; c.auto = &prof }
}

// Hierarchical selects the two-level schedule for the fixed-size
// Index, Concat and AllReduce on a machine created with WithTopology:
// concurrent intra-group phases, an inter-group phase over the group
// leaders, and redistribution fan phases, compiled as one Plan whose
// Report splits C1/C2 per link class (Report.Intra/Inter). The
// reductions support AllReduce only; the ragged (V) operations, the
// one-to-all primitives and mixed-radix calls ignore it.
func Hierarchical() CollectiveOption {
	return func(c *callConfig) { c.hier = true }
}

// WithHierRadices sets the per-level Bruck radices of a hierarchical
// index schedule: intra for the in-group all-to-alls, inter for the
// leader exchange. 0 picks the round-minimal k+1 at that level.
// Ignored by flat schedules and by the hierarchical concatenation and
// allreduce, which have no radix axis.
func WithHierRadices(intra, inter int) CollectiveOption {
	return func(c *callConfig) {
		c.hierOpt = collective.HierOptions{IntraRadix: intra, InterRadix: inter}
	}
}

// Reduction kernels: a reduction collective combines blocks where a
// plain collective copies them. WithKernel selects a built-in
// elementwise kernel; WithCombine plugs in an arbitrary user reduction
// over whole blocks.

// ReduceOp names a built-in elementwise reduction (ReduceSum,
// ReduceMin, ReduceMax).
type ReduceOp = buffers.ReduceOp

const (
	ReduceSum = buffers.Sum
	ReduceMin = buffers.Min
	ReduceMax = buffers.Max
)

// DataType names the element type of a built-in reduction kernel
// (Int32, Int64, Float32, Float64), encoded little-endian. The typed
// view helpers (PutFloat32s and friends) produce exactly this layout.
type DataType = buffers.DataType

const (
	Int32   = buffers.Int32
	Int64   = buffers.Int64
	Float32 = buffers.Float32
	Float64 = buffers.Float64
)

// CombineFunc combines src into dst elementwise: dst = dst op src. The
// slices have equal length and never overlap; the function must not
// retain them (src is pooled transport memory). It is never invoked on
// empty slabs. For results independent of the schedule the reduction
// must be associative and commutative; each compiled plan applies its
// combines in a fixed order, so repeated executions of one plan are
// bit-identical, but different algorithms associate differently — which
// floating-point summation notices at the last ulp.
type CombineFunc = buffers.CombineFunc

// ReduceAlgorithm selects the reduce-scatter schedule (and thereby the
// first phase of AllReduce).
type ReduceAlgorithm = collective.ReduceAlgorithm

const (
	// ReduceRing (default) passes each chunk's partial once around the
	// ring: n-1 rounds, (n-1)*b volume, any group size.
	ReduceRing = collective.ReduceRing
	// ReduceHalving is recursive vector halving: log2 n rounds, (n-1)*b
	// volume, power-of-two group sizes.
	ReduceHalving = collective.ReduceHalving
	// ReduceBruck runs the radix-r Bruck index schedule and combines at
	// the destination: C1/C2 are the index algorithm's, so WithRadix
	// dials the paper's trade-off for reductions too.
	ReduceBruck = collective.ReduceBruck
)

// ReduceKind selects the operation CompileReduce compiles:
// ReduceScatterKind or AllReduceKind.
type ReduceKind = collective.ReduceKind

const (
	ReduceScatterKind = collective.ReduceScatterKind
	AllReduceKind     = collective.AllReduceKind
)

// WithKernel selects the built-in elementwise reduction kernel for a
// reduction collective: op over elements of type t. The block size must
// be a multiple of the element size. Required (or WithCombine) on every
// reduction call with a nonzero block size.
func WithKernel(op ReduceOp, t DataType) CollectiveOption {
	return func(c *callConfig) {
		c.kernelOp, c.kernelTyp, c.kernelSet = op, t, true
		c.combine = nil
	}
}

// WithCombine plugs a user reduction into a reduction collective.
// Plans compiled for a user kernel are not cached — the plan cache
// cannot tell two functions apart — so hold the Plan from CompileReduce
// when calling repeatedly. See CombineFunc for the safety rules.
func WithCombine(fn CombineFunc) CollectiveOption {
	return func(c *callConfig) {
		c.combine = fn
		c.kernelSet = false
	}
}

// WithReduceAlgorithm selects the reduce-scatter schedule (ReduceRing,
// ReduceHalving, ReduceBruck). For ReduceBruck, WithRadix selects the
// index radix. WithAuto overrides this with the cost-model verdict.
func WithReduceAlgorithm(a ReduceAlgorithm) CollectiveOption {
	return func(c *callConfig) { c.reduceAlg = a }
}

func (m *Machine) call(opts []CollectiveOption) callConfig {
	cfg := callConfig{group: m.world}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// topoRouted reports whether a fixed-size call bypasses the flat
// compilers: Hierarchical() forces the two-level schedule, and
// WithAuto on a machine with a nontrivial topology runs the
// flat-vs-hierarchical dispatch.
func (m *Machine) topoRouted(cfg callConfig) bool {
	return cfg.hier || (cfg.auto != nil && m.topo != nil && !m.topo.Trivial())
}

// errNoTopology guards the forced-hierarchical paths.
func (m *Machine) hierTopo() (*Topology, error) {
	if m.topo == nil {
		return nil, fmt.Errorf("bruck: Hierarchical requires a machine created with WithTopology")
	}
	return m.topo, nil
}

// topoIndexPlan resolves a topology-routed index plan: the forced
// hierarchical schedule, or the auto dispatcher's winner.
func (m *Machine) topoIndexPlan(cfg callConfig, blockLen int) (*Plan, error) {
	if cfg.hier {
		topo, err := m.hierTopo()
		if err != nil {
			return nil, err
		}
		return m.plans.HierIndexPlan(m.engine, cfg.group, blockLen, topo, cfg.hierOpt)
	}
	return m.plans.AutoHierIndexPlan(m.engine, cfg.group, blockLen, m.topo)
}

// topoConcatPlan is topoIndexPlan for the concatenation.
func (m *Machine) topoConcatPlan(cfg callConfig, blockLen int) (*Plan, error) {
	if cfg.hier {
		topo, err := m.hierTopo()
		if err != nil {
			return nil, err
		}
		return m.plans.HierConcatPlan(m.engine, cfg.group, blockLen, topo, cfg.hierOpt)
	}
	return m.plans.AutoHierConcatPlan(m.engine, cfg.group, blockLen, m.topo, cfg.concatOpt.LastRound)
}

// Index performs all-to-all personalized communication
// (MPI_Alltoall): in[i][j] is block B[i,j], the block processor i holds
// for processor j; the result satisfies out[i][j] = in[j][i]. All
// blocks must have the same size.
//
// Index is a convenience adapter over IndexFlat: the block matrix is
// copied into a flat buffer, the zero-copy path runs, and the result is
// copied back out as fresh slices. Allocation-sensitive callers should
// use IndexFlat.
func (m *Machine) Index(in [][][]byte, opts ...CollectiveOption) ([][][]byte, *Report, error) {
	cfg := m.call(opts)
	if m.topoRouted(cfg) {
		return m.sliceRun(in, func(blockLen int) (*Plan, error) { return m.topoIndexPlan(cfg, blockLen) }, cfg)
	}
	if cfg.radices != nil {
		return m.plans.IndexMixed(m.engine, cfg.group, in, cfg.radices)
	}
	return m.plans.Index(m.engine, cfg.group, in, cfg.indexOpt)
}

// sliceRun adapts a topology-routed plan to the legacy-slice matrix
// shape: copy in, execute, copy out — the same adaptation Index and
// AllReduce perform for flat plans inside the plan cache.
func (m *Machine) sliceRun(in [][][]byte, plan func(blockLen int) (*Plan, error), cfg callConfig) ([][][]byte, *Report, error) {
	fin, err := buffers.FromMatrix(in)
	if err != nil {
		return nil, nil, err
	}
	pl, err := plan(fin.BlockLen())
	if err != nil {
		return nil, nil, err
	}
	n := cfg.group.Size()
	fout, err := buffers.New(n, n, fin.BlockLen())
	if err != nil {
		return nil, nil, err
	}
	res, err := pl.Execute(fin, fout)
	if err != nil {
		return nil, nil, err
	}
	return fout.ToMatrix(), res, nil
}

// Concat performs all-to-all broadcast (MPI_Allgather): in[i] is block
// B[i]; afterwards every processor holds the full concatenation,
// out[i][j] = in[j]. All blocks must have the same size.
//
// Concat is a convenience adapter over ConcatFlat; allocation-sensitive
// callers should use ConcatFlat.
func (m *Machine) Concat(in [][]byte, opts ...CollectiveOption) ([][][]byte, *Report, error) {
	cfg := m.call(opts)
	if m.topoRouted(cfg) {
		fin, err := buffers.FromVector(in)
		if err != nil {
			return nil, nil, err
		}
		pl, err := m.topoConcatPlan(cfg, fin.BlockLen())
		if err != nil {
			return nil, nil, err
		}
		n := cfg.group.Size()
		fout, err := buffers.New(n, n, fin.BlockLen())
		if err != nil {
			return nil, nil, err
		}
		res, err := pl.Execute(fin, fout)
		if err != nil {
			return nil, nil, err
		}
		return fout.ToMatrix(), res, nil
	}
	return m.plans.Concat(m.engine, cfg.group, in, cfg.concatOpt)
}

// Buffers is the flat block store of the zero-copy collective paths:
// one contiguous byte slab holding, for each of n processors, a fixed
// number of fixed-size blocks. Proc and Block return in-place views,
// never copies. See NewIndexBuffers and NewConcatBuffers for the shapes
// the flat operations expect.
type Buffers = buffers.Buffers

// NewBuffers creates an all-zero flat buffer for procs processors with
// blocks blocks of blockLen bytes each.
func NewBuffers(procs, blocks, blockLen int) (*Buffers, error) {
	return buffers.New(procs, blocks, blockLen)
}

// NewIndexBuffers creates an index-shaped flat buffer (n processors
// with n blocks of blockLen bytes each), the layout IndexFlat expects
// for both its input and its output: block j of processor region i is
// B[i, j].
func NewIndexBuffers(n, blockLen int) (*Buffers, error) {
	return buffers.New(n, n, blockLen)
}

// NewConcatBuffers creates a concat-shaped flat input buffer (n
// processors with one block of blockLen bytes each), the layout
// ConcatFlat expects for its input; its output is index-shaped
// (NewIndexBuffers).
func NewConcatBuffers(n, blockLen int) (*Buffers, error) {
	return buffers.New(n, 1, blockLen)
}

// IndexFlat is the zero-copy index operation: in and out are
// index-shaped flat buffers (NewIndexBuffers) for the group size n;
// afterwards out.Block(i, j) equals in.Block(j, i). in and out must be
// distinct; out is fully overwritten. The schedule — and therefore the
// Report — is identical to Index's, but packing, unpacking and receives
// all work in caller-owned or pool-recycled contiguous memory: on a
// reused Machine the operation performs no per-block or per-message
// allocations.
func (m *Machine) IndexFlat(in, out *Buffers, opts ...CollectiveOption) (*Report, error) {
	cfg := m.call(opts)
	if m.topoRouted(cfg) {
		if in == nil || out == nil {
			return nil, fmt.Errorf("bruck: nil flat buffer")
		}
		pl, err := m.topoIndexPlan(cfg, in.BlockLen())
		if err != nil {
			return nil, err
		}
		return pl.Execute(in, out)
	}
	if cfg.radices != nil {
		return m.plans.IndexMixedFlat(m.engine, cfg.group, in, out, cfg.radices)
	}
	return m.plans.IndexFlat(m.engine, cfg.group, in, out, cfg.indexOpt)
}

// ConcatFlat is the zero-copy concatenation: in is a concat-shaped flat
// buffer (NewConcatBuffers) and out an index-shaped one
// (NewIndexBuffers); afterwards out.Block(i, j) equals in.Block(j, 0)
// for every member i. The output slab doubles as the algorithm's
// accumulation memory, so beyond pooled transport buffers the operation
// allocates nothing on a reused Machine.
func (m *Machine) ConcatFlat(in, out *Buffers, opts ...CollectiveOption) (*Report, error) {
	cfg := m.call(opts)
	if m.topoRouted(cfg) {
		if in == nil || out == nil {
			return nil, fmt.Errorf("bruck: nil flat buffer")
		}
		pl, err := m.topoConcatPlan(cfg, in.BlockLen())
		if err != nil {
			return nil, err
		}
		return pl.Execute(in, out)
	}
	return m.plans.ConcatFlat(m.engine, cfg.group, in, out, cfg.concatOpt)
}

// Handle is the completion handle of a non-blocking collective
// (IndexAsync, ConcatAsync, AllReduceAsync). Exactly one operation may
// be in flight per Machine; the operation owns its input and output
// buffers until Wait (or a true Test) — touching them earlier, or
// starting any other operation on the Machine, races with the running
// schedule. Execution errors — including the engine's deadlock-watchdog
// fencing, identical to the blocking path's — surface on Wait.
type Handle struct {
	done chan struct{}
	rep  *Report
	err  error
}

// Wait blocks until the operation completes and returns its Report and
// error. Wait is idempotent: every call returns the same pair, and the
// first return re-licenses the Machine (and the buffers) for the next
// operation.
func (h *Handle) Wait() (*Report, error) {
	<-h.done
	return h.rep, h.err
}

// Test reports whether the operation has completed, without blocking.
// A true return has Wait's full effect: the result is ready and the
// Machine is free.
func (h *Handle) Test() bool {
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

// Report returns the completed operation's Report, or nil while it is
// still running (or if it failed — use Wait for the error).
func (h *Handle) Report() *Report {
	if !h.Test() {
		return nil
	}
	return h.rep
}

// async resolves a plan synchronously (the plan cache is confined to
// the caller's goroutine), then executes it on a background goroutine
// and returns immediately. planErr short-circuits: resolution failures
// are synchronous, execution failures surface on Wait.
func (m *Machine) async(pl *Plan, planErr error, in, out *Buffers) (*Handle, error) {
	if planErr != nil {
		return nil, planErr
	}
	if !m.inflight.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("bruck: an asynchronous operation is already in flight (Wait on its Handle first)")
	}
	h := &Handle{done: make(chan struct{})}
	go func() {
		h.rep, h.err = pl.Execute(in, out)
		m.inflight.Store(false)
		close(h.done)
	}()
	return h, nil
}

// IndexAsync is the non-blocking IndexFlat: it compiles (or fetches)
// the plan synchronously, starts the exchange on a background
// goroutine, and returns a Handle immediately, so the caller can
// overlap independent computation with the communication — the overlap
// the paper's C1*beta start-up term prices. in and out follow
// IndexFlat's contract and belong to the operation until Wait.
func (m *Machine) IndexAsync(in, out *Buffers, opts ...CollectiveOption) (*Handle, error) {
	cfg := m.call(opts)
	if in == nil || out == nil {
		return nil, fmt.Errorf("bruck: nil flat buffer")
	}
	if m.topoRouted(cfg) {
		pl, err := m.topoIndexPlan(cfg, in.BlockLen())
		return m.async(pl, err, in, out)
	}
	if cfg.radices != nil {
		pl, err := m.plans.IndexMixedPlan(m.engine, cfg.group, in.BlockLen(), cfg.radices)
		return m.async(pl, err, in, out)
	}
	pl, err := m.plans.IndexPlan(m.engine, cfg.group, in.BlockLen(), cfg.indexOpt)
	return m.async(pl, err, in, out)
}

// ConcatAsync is the non-blocking ConcatFlat; in is concat-shaped and
// out index-shaped, as there.
func (m *Machine) ConcatAsync(in, out *Buffers, opts ...CollectiveOption) (*Handle, error) {
	cfg := m.call(opts)
	if in == nil || out == nil {
		return nil, fmt.Errorf("bruck: nil flat buffer")
	}
	if m.topoRouted(cfg) {
		pl, err := m.topoConcatPlan(cfg, in.BlockLen())
		return m.async(pl, err, in, out)
	}
	pl, err := m.plans.ConcatPlan(m.engine, cfg.group, in.BlockLen(), cfg.concatOpt)
	return m.async(pl, err, in, out)
}

// AllReduceAsync is the non-blocking AllReduceFlat; in and out are both
// index-shaped, as there.
func (m *Machine) AllReduceAsync(in, out *Buffers, opts ...CollectiveOption) (*Handle, error) {
	cfg := m.call(opts)
	if in == nil || out == nil {
		return nil, fmt.Errorf("bruck: nil flat buffer")
	}
	pl, err := m.reducePlan(cfg, AllReduceKind, in.BlockLen())
	return m.async(pl, err, in, out)
}

// Layout describes the block-size structure of a ragged collective: a
// table of per-(src, dst) byte counts for IndexV (MPI_Alltoallv's
// counts) or per-source counts for ConcatV (MPI_Allgatherv's). Uniform
// layouts — including ragged-constructed tables whose entries are all
// equal — compile to exactly the schedules of the fixed-size
// operations. See NewIndexLayout and NewConcatLayout.
type Layout = blocks.Layout

// NewIndexLayout builds an index layout from counts[i][j] = the number
// of bytes group rank i holds for rank j. Zero-length blocks are
// allowed; an all-equal table yields the uniform fast path.
func NewIndexLayout(counts [][]int) (*Layout, error) { return blocks.Ragged(counts) }

// NewConcatLayout builds a concatenation layout from counts[i] = group
// rank i's contribution in bytes.
func NewConcatLayout(counts []int) (*Layout, error) { return blocks.RaggedVector(counts) }

// RaggedBuffers is the flat block store of the ragged collective paths:
// one contiguous slab whose block boundaries follow a Layout instead of
// a fixed stride. Block and Proc return in-place views, never copies.
// IndexVFlat takes a slab of the plan's layout and one of its
// transpose; ConcatVFlat takes the n x 1 input layout and its n x n
// ConcatOut shape.
type RaggedBuffers = buffers.Ragged

// NewRaggedBuffers creates an all-zero ragged slab shaped by the
// layout.
func NewRaggedBuffers(l *Layout) (*RaggedBuffers, error) { return buffers.NewRagged(l) }

// indexVPlan resolves the layout plan of one IndexV-family call:
// auto-dispatched, mixed-radix, or the configured algorithm/radix, all
// through the plan cache under layout-digest keys.
func (m *Machine) indexVPlan(cfg callConfig, l *Layout) (*Plan, error) {
	if cfg.auto != nil {
		return m.plans.AutoIndexVPlan(m.engine, cfg.group, l, *cfg.auto)
	}
	if cfg.radices != nil {
		return m.plans.IndexVMixedPlan(m.engine, cfg.group, l, cfg.radices)
	}
	return m.plans.IndexVPlan(m.engine, cfg.group, l, cfg.indexOpt)
}

// concatVPlan is indexVPlan for the concatenation.
func (m *Machine) concatVPlan(cfg callConfig, l *Layout) (*Plan, error) {
	if cfg.auto != nil {
		return m.plans.AutoConcatVPlan(m.engine, cfg.group, l, *cfg.auto, cfg.concatOpt.LastRound)
	}
	return m.plans.ConcatVPlan(m.engine, cfg.group, l, cfg.concatOpt)
}

// IndexV performs all-to-all personalized communication with
// variable-size blocks (MPI_Alltoallv): in[i][j] is the block group
// rank i holds for rank j, and block lengths may differ freely —
// including zero. The layout is derived from the lengths themselves;
// the result satisfies out[i][j] = in[j][i]. On equal-length input
// IndexV is byte- and Report-identical to Index.
//
// IndexV is a convenience adapter over IndexVFlat (one copy in, one
// copy out); allocation-sensitive callers should use IndexVFlat.
func (m *Machine) IndexV(in [][][]byte, opts ...CollectiveOption) ([][][]byte, *Report, error) {
	cfg := m.call(opts)
	fin, err := buffers.FromRaggedMatrix(in)
	if err != nil {
		return nil, nil, err
	}
	pl, err := m.indexVPlan(cfg, fin.Layout())
	if err != nil {
		return nil, nil, err
	}
	fout, err := buffers.NewRagged(pl.OutLayout())
	if err != nil {
		return nil, nil, err
	}
	res, err := pl.ExecuteV(fin, fout)
	if err != nil {
		return nil, nil, err
	}
	return fout.ToMatrix(), res, nil
}

// ConcatV performs all-to-all broadcast with variable-size
// contributions (MPI_Allgatherv): in[i] is group rank i's block, of any
// length; afterwards out[i][j] = in[j] for every member i. On
// equal-length input ConcatV is byte- and Report-identical to Concat.
//
// ConcatV is a convenience adapter over ConcatVFlat; allocation-
// sensitive callers should use ConcatVFlat.
func (m *Machine) ConcatV(in [][]byte, opts ...CollectiveOption) ([][][]byte, *Report, error) {
	cfg := m.call(opts)
	fin, err := buffers.FromRaggedVector(in)
	if err != nil {
		return nil, nil, err
	}
	pl, err := m.concatVPlan(cfg, fin.Layout())
	if err != nil {
		return nil, nil, err
	}
	fout, err := buffers.NewRagged(pl.OutLayout())
	if err != nil {
		return nil, nil, err
	}
	res, err := pl.ExecuteV(fin, fout)
	if err != nil {
		return nil, nil, err
	}
	return fout.ToMatrix(), res, nil
}

// IndexVFlat is the zero-copy ragged index: in is a RaggedBuffers of
// the call's n x n layout and out one of its transpose (afterwards
// out.Block(i, j) equals in.Block(j, i) at its true length). Like
// IndexFlat it routes through the plan cache — here under layout-digest
// keys — so repeated layouts compile once, and on a reused Machine the
// steady state performs no per-block or per-message allocations.
func (m *Machine) IndexVFlat(in, out *RaggedBuffers, opts ...CollectiveOption) (*Report, error) {
	cfg := m.call(opts)
	if in == nil || out == nil {
		return nil, fmt.Errorf("bruck: nil ragged buffer")
	}
	pl, err := m.indexVPlan(cfg, in.Layout())
	if err != nil {
		return nil, err
	}
	return pl.ExecuteV(in, out)
}

// ConcatVFlat is the zero-copy ragged concatenation: in is a
// RaggedBuffers of the n x 1 contribution layout and out one of its
// ConcatOut shape (afterwards out.Block(i, j) equals in.Block(j, 0)).
func (m *Machine) ConcatVFlat(in, out *RaggedBuffers, opts ...CollectiveOption) (*Report, error) {
	cfg := m.call(opts)
	if in == nil || out == nil {
		return nil, fmt.Errorf("bruck: nil ragged buffer")
	}
	pl, err := m.concatVPlan(cfg, in.Layout())
	if err != nil {
		return nil, err
	}
	return pl.ExecuteV(in, out)
}

// CompileIndexV compiles (and caches) the ragged index schedule for the
// layout. With WithAuto the returned plan is the cost-model winner over
// the candidate algorithms and radices. The plan's ExecuteV takes a
// slab of the layout and one of its transpose; BindV attaches such a
// pair for RunPlans, where ragged and fixed-size plans may run
// concurrently on disjoint groups.
func (m *Machine) CompileIndexV(l *Layout, opts ...CollectiveOption) (*Plan, error) {
	return m.indexVPlan(m.call(opts), l)
}

// CompileConcatV compiles (and caches) the ragged concatenation
// schedule for the layout (circulant on padded slots, or the
// exact-extent ring via WithConcatAlgorithm/WithAuto).
func (m *Machine) CompileConcatV(l *Layout, opts ...CollectiveOption) (*Plan, error) {
	return m.concatVPlan(m.call(opts), l)
}

// Plan is a compiled collective schedule: the complete round, partner
// and packing layout of one operation on one (group, block size,
// options) configuration, precomputed so repeated executions perform no
// schedule work at all — the paper's schedules are fixed functions of
// (n, k, r), so one compilation serves every invocation. Obtain plans
// from CompileIndex/CompileConcat, run one with Plan.Execute, or run
// several disjoint-group plans concurrently with RunPlans. A Plan
// remains valid for the lifetime of its Machine, including across
// recovery from a deadlocked run.
type Plan = collective.Plan

// CompileIndex compiles (and caches) the index schedule for the given
// block size and options. The returned plan's Execute takes
// index-shaped input and output buffers (NewIndexBuffers) and produces
// exactly what IndexFlat would — IndexFlat itself is a thin wrapper
// that compiles through the same cache and executes once.
func (m *Machine) CompileIndex(blockLen int, opts ...CollectiveOption) (*Plan, error) {
	cfg := m.call(opts)
	if m.topoRouted(cfg) {
		return m.topoIndexPlan(cfg, blockLen)
	}
	if cfg.radices != nil {
		return m.plans.IndexMixedPlan(m.engine, cfg.group, blockLen, cfg.radices)
	}
	return m.plans.IndexPlan(m.engine, cfg.group, blockLen, cfg.indexOpt)
}

// CompileConcat compiles (and caches) the concatenation schedule for
// the given block size and options — including the circulant
// algorithm's last-round table partition, the expensive part of
// per-call schedule construction. The returned plan's Execute takes a
// concat-shaped input (NewConcatBuffers) and an index-shaped output
// (NewIndexBuffers).
func (m *Machine) CompileConcat(blockLen int, opts ...CollectiveOption) (*Plan, error) {
	cfg := m.call(opts)
	if m.topoRouted(cfg) {
		return m.topoConcatPlan(cfg, blockLen)
	}
	return m.plans.ConcatPlan(m.engine, cfg.group, blockLen, cfg.concatOpt)
}

// RunPlans executes several compiled plans concurrently inside one
// engine run. The plans must belong to this machine, their groups must
// be pairwise disjoint, and each must carry buffers attached with
// Plan.Bind (BindV for layout plans). Fixed-size, ragged and reduction
// plans may share a pass. Every plan keeps its own Report (per-group
// metrics); the k-port constraint is still enforced per processor.
// Results are byte-identical to executing the plans sequentially.
func (m *Machine) RunPlans(plans []*Plan) ([]*Report, error) {
	return collective.ExecutePlans(m.engine, plans)
}

// reduceOptions resolves one reduction call's configuration into the
// implementation options: the built-in kernel named by WithKernel (with
// its element size and cache identity) or the raw WithCombine function.
func (c callConfig) reduceOptions() (collective.ReduceOptions, error) {
	opt := collective.ReduceOptions{
		Algorithm: c.reduceAlg,
		Radix:     c.indexOpt.Radix,
		LastRound: c.concatOpt.LastRound,
		Segments:  c.indexOpt.Segments,
	}
	switch {
	case c.combine != nil:
		opt.Kernel = c.combine
	case c.kernelSet:
		fn, err := buffers.Kernel(c.kernelOp, c.kernelTyp)
		if err != nil {
			return opt, err
		}
		opt.Kernel = fn
		opt.ElemSize = c.kernelTyp.Size()
		opt.KernelKey = c.kernelOp.String() + "/" + c.kernelTyp.String()
	}
	return opt, nil
}

// reducePlan resolves the plan of one reduction call: auto-dispatched
// or the configured algorithm, through the plan cache (user kernels
// compile fresh, see WithCombine).
func (m *Machine) reducePlan(cfg callConfig, kind ReduceKind, blockLen int) (*Plan, error) {
	opt, err := cfg.reduceOptions()
	if err != nil {
		return nil, err
	}
	if cfg.hier {
		topo, err := m.hierTopo()
		if err != nil {
			return nil, err
		}
		return m.plans.HierReducePlan(m.engine, cfg.group, kind, blockLen, topo, opt)
	}
	if cfg.auto != nil {
		if m.topo != nil && !m.topo.Trivial() {
			return m.plans.AutoHierReducePlan(m.engine, cfg.group, kind, blockLen, m.topo, opt)
		}
		return m.plans.AutoReducePlan(m.engine, cfg.group, kind, blockLen, opt, *cfg.auto)
	}
	return m.plans.ReducePlan(m.engine, cfg.group, kind, blockLen, opt)
}

// ReduceScatterFlat is the zero-copy reduce-scatter: in is an
// index-shaped flat buffer (NewIndexBuffers) whose Block(i, j) is group
// rank i's contribution to chunk j, and out a concat-shaped one
// (NewConcatBuffers); afterwards out.Block(i, 0) is the elementwise
// combination over j of in.Block(j, i) under the kernel selected with
// WithKernel or WithCombine. The data movement is the index
// operation's; the combine is applied on receive in place of the plain
// copy. ReduceScatterFlat routes through the plan cache exactly like
// IndexFlat.
func (m *Machine) ReduceScatterFlat(in, out *Buffers, opts ...CollectiveOption) (*Report, error) {
	if in == nil || out == nil {
		return nil, fmt.Errorf("bruck: nil flat buffer")
	}
	pl, err := m.reducePlan(m.call(opts), ReduceScatterKind, in.BlockLen())
	if err != nil {
		return nil, err
	}
	return pl.Execute(in, out)
}

// AllReduceFlat is the zero-copy allreduce: in and out are both
// index-shaped (NewIndexBuffers), in.Block(i, j) is rank i's
// contribution to chunk j, and afterwards out.Block(i, j) is the
// combination over p of in.Block(p, j) — identical on every rank. The
// schedule is the classic composition reduce-scatter + allgather: the
// reduce-scatter phase selected by WithReduceAlgorithm (or WithAuto)
// followed by the paper's circulant concatenation, inside one simulated
// run.
func (m *Machine) AllReduceFlat(in, out *Buffers, opts ...CollectiveOption) (*Report, error) {
	if in == nil || out == nil {
		return nil, fmt.Errorf("bruck: nil flat buffer")
	}
	pl, err := m.reducePlan(m.call(opts), AllReduceKind, in.BlockLen())
	if err != nil {
		return nil, err
	}
	return pl.Execute(in, out)
}

// ReduceScatter is the legacy-slice reduce-scatter: in[i][j] is group
// rank i's contribution to chunk j (all blocks equal-size), and the
// result's element i is rank i's fully combined chunk i. A convenience
// adapter over ReduceScatterFlat — one copy in, one copy out;
// allocation-sensitive callers should use ReduceScatterFlat.
func (m *Machine) ReduceScatter(in [][][]byte, opts ...CollectiveOption) ([][]byte, *Report, error) {
	fin, err := buffers.FromMatrix(in)
	if err != nil {
		return nil, nil, err
	}
	cfg := m.call(opts)
	fout, err := buffers.New(cfg.group.Size(), 1, fin.BlockLen())
	if err != nil {
		return nil, nil, err
	}
	res, err := m.ReduceScatterFlat(fin, fout, opts...)
	if err != nil {
		return nil, nil, err
	}
	out, err := fout.ToVector()
	if err != nil {
		return nil, nil, err
	}
	return out, res, nil
}

// AllReduce is the legacy-slice allreduce: in[i][j] is group rank i's
// contribution to chunk j; the result satisfies out[i][j] = the
// combination over p of in[p][j] on every rank i. A convenience adapter
// over AllReduceFlat.
func (m *Machine) AllReduce(in [][][]byte, opts ...CollectiveOption) ([][][]byte, *Report, error) {
	fin, err := buffers.FromMatrix(in)
	if err != nil {
		return nil, nil, err
	}
	cfg := m.call(opts)
	fout, err := buffers.New(cfg.group.Size(), cfg.group.Size(), fin.BlockLen())
	if err != nil {
		return nil, nil, err
	}
	res, err := m.AllReduceFlat(fin, fout, opts...)
	if err != nil {
		return nil, nil, err
	}
	return fout.ToMatrix(), res, nil
}

// CompileReduce compiles (and caches) the reduction selected by kind —
// ReduceScatterKind or AllReduceKind — for the given block size and
// options. The returned plan's Execute takes an index-shaped input and
// a concat-shaped (reduce-scatter) or index-shaped (allreduce) output;
// Bind attaches such a pair for RunPlans, where reduction plans run
// concurrently with index, concat and layout plans on disjoint groups.
// With WithAuto the returned plan is the cost-model winner over the
// candidate reduce-scatter schedules.
func (m *Machine) CompileReduce(kind ReduceKind, blockLen int, opts ...CollectiveOption) (*Plan, error) {
	return m.reducePlan(m.call(opts), kind, blockLen)
}

// Typed element views, re-exported from the buffer layer: encode typed
// vectors into the little-endian byte layout the built-in kernels
// reduce over, and decode slabs back. The Put variants require dst to
// hold exactly len(vals) elements.

// PutInt32s encodes vals into dst little-endian.
func PutInt32s(dst []byte, vals []int32) { buffers.PutInt32s(dst, vals) }

// Int32s decodes src as little-endian int32 elements.
func Int32s(src []byte) []int32 { return buffers.Int32s(src) }

// PutInt64s encodes vals into dst little-endian.
func PutInt64s(dst []byte, vals []int64) { buffers.PutInt64s(dst, vals) }

// Int64s decodes src as little-endian int64 elements.
func Int64s(src []byte) []int64 { return buffers.Int64s(src) }

// PutFloat32s encodes vals into dst little-endian.
func PutFloat32s(dst []byte, vals []float32) { buffers.PutFloat32s(dst, vals) }

// Float32s decodes src as little-endian float32 elements.
func Float32s(src []byte) []float32 { return buffers.Float32s(src) }

// PutFloat64s encodes vals into dst little-endian.
func PutFloat64s(dst []byte, vals []float64) { buffers.PutFloat64s(dst, vals) }

// Float64s decodes src as little-endian float64 elements.
func Float64s(src []byte) []float64 { return buffers.Float64s(src) }

// Broadcast sends root's data to every group member; the result holds
// each member's copy.
func (m *Machine) Broadcast(root int, data []byte, opts ...CollectiveOption) ([][]byte, *Report, error) {
	cfg := m.call(opts)
	return collective.Broadcast(m.engine, cfg.group, root, data)
}

// Gather collects one equal-size block from every group member at
// root, in group-rank order.
func (m *Machine) Gather(root int, in [][]byte, opts ...CollectiveOption) ([][]byte, *Report, error) {
	cfg := m.call(opts)
	return collective.Gather(m.engine, cfg.group, root, in)
}

// Scatter distributes root's per-member blocks: member j receives
// in[j].
func (m *Machine) Scatter(root int, in [][]byte, opts ...CollectiveOption) ([][]byte, *Report, error) {
	cfg := m.call(opts)
	return collective.Scatter(m.engine, cfg.group, root, in)
}

// BroadcastInto is the caller-owned-memory broadcast: root's data lands
// in out.Block(i, 0) of a concat-shaped Buffers (NewConcatBuffers with
// blockLen = len(data)). Unlike Broadcast it allocates no per-member
// result slices: on a reused Machine the operation performs no
// allocations beyond pooled transport buffers.
func (m *Machine) BroadcastInto(root int, data []byte, out *Buffers, opts ...CollectiveOption) (*Report, error) {
	cfg := m.call(opts)
	return collective.BroadcastInto(m.engine, cfg.group, root, data, out)
}

// GatherInto is the caller-owned-memory gather: each member's block is
// in.Block(me, 0) of a concat-shaped Buffers, and the concatenation
// lands at the root, in group-rank order, in the caller's out slice of
// n*blockLen bytes. Non-roots never touch out.
func (m *Machine) GatherInto(root int, in *Buffers, out []byte, opts ...CollectiveOption) (*Report, error) {
	cfg := m.call(opts)
	return collective.GatherInto(m.engine, cfg.group, root, in, out)
}

// ScatterInto is the caller-owned-memory scatter: in is the root's
// per-member blocks as one n*blockLen slice in group-rank order, and
// member j's block lands in out.Block(j, 0) of a concat-shaped
// Buffers. in is only read at the root.
func (m *Machine) ScatterInto(root int, in []byte, out *Buffers, opts ...CollectiveOption) (*Report, error) {
	cfg := m.call(opts)
	return collective.ScatterInto(m.engine, cfg.group, root, in, out)
}

// OptimalRadix returns the radix minimizing the linear-model time of
// the Bruck index algorithm for n processors, block size b bytes and k
// ports under the given machine profile. With powerOfTwoOnly it mirrors
// the paper's Section 3.5 tuning over power-of-two radices.
func OptimalRadix(p Profile, n, b, k int, powerOfTwoOnly bool) int {
	return collective.OptimalRadix(p, n, b, k, powerOfTwoOnly)
}

// PredictIndex returns the closed-form (C1, C2) of the radix-r Bruck
// index algorithm for n processors, block size b and k ports, in
// rounds and bytes.
func PredictIndex(n, b, r, k int) (c1, c2 int) {
	return collective.IndexCost(n, b, r, k)
}

// OptimalRadixSchedule returns the mixed-radix vector minimizing the
// linear-model time of the index operation, found by dynamic
// programming; it is never worse than the best uniform radix. Use it
// with WithRadices.
func OptimalRadixSchedule(p Profile, n, b, k int) []int {
	return collective.OptimalRadixSchedule(p, n, b, k)
}

// PredictIndexMixed returns the closed-form (C1, C2) of the
// mixed-radix index algorithm.
func PredictIndexMixed(n, b int, radices []int, k int) (c1, c2 int) {
	return collective.IndexMixedCost(n, b, radices, k)
}

// PredictConcat returns the closed-form (C1, C2) of the circulant
// concatenation under the default last-round policy.
func PredictConcat(n, b, k int) (c1, c2 int, err error) {
	return collective.ConcatCost(n, b, k, partition.PreferOptimal)
}

// MustNewMachine is NewMachine for known-good parameters; it panics on
// error. Intended for examples and tests.
func MustNewMachine(n int, opts ...MachineOption) *Machine {
	m, err := NewMachine(n, opts...)
	if err != nil {
		panic(fmt.Sprintf("bruck: %v", err))
	}
	return m
}
