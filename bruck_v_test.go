package bruck

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"bruck/internal/lowerbound"
)

// raggedIndexInput builds an n x n legacy block matrix with skewed,
// zero-including block lengths and identifying contents.
func raggedIndexInput(n int) [][][]byte {
	in := make([][][]byte, n)
	for i := range in {
		in[i] = make([][]byte, n)
		for j := range in[i] {
			ln := (i*7 + j*3) % 19
			if (i*n+j)%5 == 0 {
				ln = 0
			}
			blk := make([]byte, ln)
			for x := range blk {
				blk[x] = byte(i*131 + j*31 + x*7)
			}
			in[i][j] = blk
		}
	}
	return in
}

// TestIndexVUniformIdenticalToIndex is the public half of the uniform
// equivalence acceptance: equal-length legacy input through IndexV must
// produce the same bytes and the same Report as Index, on both
// transports, across the (n, k) acceptance grid.
func TestIndexVUniformIdenticalToIndex(t *testing.T) {
	const blockLen = 8
	for _, backend := range []Backend{BackendChan, BackendSlot} {
		for n := 1; n <= 16; n++ {
			for k := 1; k <= 3 && (k == 1 || k <= n-1); k++ {
				m := MustNewMachine(n, Ports(k), WithTransport(backend))
				in := make([][][]byte, n)
				for i := range in {
					in[i] = make([][]byte, n)
					for j := range in[i] {
						blk := make([]byte, blockLen)
						for x := range blk {
							blk[x] = byte(i*37 + j*11 + x)
						}
						in[i][j] = blk
					}
				}
				out1, rep1, err := m.Index(in)
				if err != nil {
					t.Fatalf("%v n=%d k=%d: Index: %v", backend, n, k, err)
				}
				out2, rep2, err := m.IndexV(in)
				if err != nil {
					t.Fatalf("%v n=%d k=%d: IndexV: %v", backend, n, k, err)
				}
				if !reflect.DeepEqual(out1, out2) {
					t.Fatalf("%v n=%d k=%d: IndexV bytes differ from Index", backend, n, k)
				}
				if !reflect.DeepEqual(rep1, rep2) {
					t.Fatalf("%v n=%d k=%d: IndexV report %+v differs from Index report %+v", backend, n, k, rep2, rep1)
				}
			}
		}
	}
}

// TestConcatVUniformIdenticalToConcat is the concatenation side.
func TestConcatVUniformIdenticalToConcat(t *testing.T) {
	const blockLen = 6
	for _, backend := range []Backend{BackendChan, BackendSlot} {
		for n := 1; n <= 16; n++ {
			for k := 1; k <= 3 && (k == 1 || k <= n-1); k++ {
				m := MustNewMachine(n, Ports(k), WithTransport(backend))
				in := make([][]byte, n)
				for i := range in {
					in[i] = make([]byte, blockLen)
					for x := range in[i] {
						in[i][x] = byte(i*53 + x*3)
					}
				}
				out1, rep1, err := m.Concat(in)
				if err != nil {
					t.Fatalf("%v n=%d k=%d: Concat: %v", backend, n, k, err)
				}
				out2, rep2, err := m.ConcatV(in)
				if err != nil {
					t.Fatalf("%v n=%d k=%d: ConcatV: %v", backend, n, k, err)
				}
				if !reflect.DeepEqual(out1, out2) {
					t.Fatalf("%v n=%d k=%d: ConcatV bytes differ from Concat", backend, n, k)
				}
				if !reflect.DeepEqual(rep1, rep2) {
					t.Fatalf("%v n=%d k=%d: ConcatV report %+v differs from Concat report %+v", backend, n, k, rep2, rep1)
				}
			}
		}
	}
}

// TestIndexVRagged drives the public ragged path — default, fixed
// radix, mixed radices, auto dispatch — against the defining
// permutation, with zero-length blocks in the mix.
func TestIndexVRagged(t *testing.T) {
	for _, backend := range []Backend{BackendChan, BackendSlot} {
		for _, n := range []int{2, 8, 13} {
			in := raggedIndexInput(n)
			for _, tc := range []struct {
				name string
				opts []CollectiveOption
			}{
				{"default", nil},
				{"radix-n", []CollectiveOption{WithRadix(n)}},
				{"direct", []CollectiveOption{WithIndexAlgorithm(IndexDirect)}},
				{"auto", []CollectiveOption{WithAuto(SP1)}},
			} {
				m := MustNewMachine(n, WithTransport(backend))
				out, rep, err := m.IndexV(in, tc.opts...)
				if err != nil {
					t.Fatalf("%v n=%d %s: %v", backend, n, tc.name, err)
				}
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						if !bytes.Equal(out[i][j], in[j][i]) {
							t.Fatalf("%v n=%d %s: out[%d][%d] != in[%d][%d]", backend, n, tc.name, i, j, j, i)
						}
					}
				}
				counts := make([][]int, n)
				for i := range counts {
					counts[i] = make([]int, n)
					for j := range counts[i] {
						counts[i][j] = len(in[i][j])
					}
				}
				if want := lowerbound.IndexVVolume(counts, 1); rep.C2LowerBound != want {
					t.Errorf("%v n=%d %s: report lower bound %d, want %d", backend, n, tc.name, rep.C2LowerBound, want)
				}
				if rep.C2 < rep.C2LowerBound {
					t.Errorf("%v n=%d %s: C2 = %d below its lower bound %d", backend, n, tc.name, rep.C2, rep.C2LowerBound)
				}
			}
		}
	}
}

// TestIndexVMixedRadices exercises WithRadices through the V path.
func TestIndexVMixedRadices(t *testing.T) {
	const n = 12
	m := MustNewMachine(n)
	in := raggedIndexInput(n)
	out, _, err := m.IndexV(in, WithRadices([]int{2, 3, 2}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !bytes.Equal(out[i][j], in[j][i]) {
				t.Fatalf("out[%d][%d] != in[%d][%d]", i, j, j, i)
			}
		}
	}
}

// TestConcatVRagged drives the public ragged concatenation, including
// the ring algorithm, auto dispatch and a zero-length contribution.
func TestConcatVRagged(t *testing.T) {
	for _, backend := range []Backend{BackendChan, BackendSlot} {
		for _, n := range []int{2, 9, 16} {
			in := make([][]byte, n)
			for i := range in {
				ln := (i * 5) % 23
				in[i] = make([]byte, ln)
				for x := range in[i] {
					in[i][x] = byte(i*61 + x*13)
				}
			}
			for _, tc := range []struct {
				name string
				opts []CollectiveOption
			}{
				{"circulant", nil},
				{"ring", []CollectiveOption{WithConcatAlgorithm(ConcatRing)}},
				{"auto", []CollectiveOption{WithAuto(SP1)}},
			} {
				m := MustNewMachine(n, WithTransport(backend))
				out, rep, err := m.ConcatV(in, tc.opts...)
				if err != nil {
					t.Fatalf("%v n=%d %s: %v", backend, n, tc.name, err)
				}
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						if !bytes.Equal(out[i][j], in[j]) {
							t.Fatalf("%v n=%d %s: out[%d][%d] != in[%d]", backend, n, tc.name, i, j, j)
						}
					}
				}
				counts := make([]int, n)
				for i := range counts {
					counts[i] = len(in[i])
				}
				if want := lowerbound.ConcatVVolume(counts, 1); rep.C2LowerBound != want {
					t.Errorf("%v n=%d %s: report lower bound %d, want %d", backend, n, tc.name, rep.C2LowerBound, want)
				}
			}
		}
	}
}

// TestIndexVFlatOnGroup runs the zero-copy ragged path on a strict
// subgroup of the machine.
func TestIndexVFlatOnGroup(t *testing.T) {
	m := MustNewMachine(9)
	g, err := m.NewGroup([]int{1, 3, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	counts := [][]int{
		{2, 0, 7, 1},
		{3, 5, 0, 2},
		{0, 1, 4, 6},
		{8, 2, 3, 0},
	}
	l, err := NewIndexLayout(counts)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewRaggedBuffers(l)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewRaggedBuffers(l.Transpose())
	if err != nil {
		t.Fatal(err)
	}
	data := in.Bytes()
	for x := range data {
		data[x] = byte(x*17 + 1)
	}
	if _, err := m.IndexVFlat(in, out, OnGroup(g)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !bytes.Equal(out.Block(i, j), in.Block(j, i)) {
				t.Fatalf("out.Block(%d,%d) != in.Block(%d,%d)", i, j, j, i)
			}
		}
	}
}

// TestRunPlansMixedUniformAndRagged is the serving scenario at API
// level: a fixed-size index plan and a ragged concat plan bound to
// disjoint groups execute in one RunPlans pass.
func TestRunPlansMixedUniformAndRagged(t *testing.T) {
	m := MustNewMachine(8)
	gU, err := m.NewGroup([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	gR, err := m.NewGroup([]int{4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}

	uni, err := m.CompileIndex(16, OnGroup(gU))
	if err != nil {
		t.Fatal(err)
	}
	uin, _ := NewIndexBuffers(4, 16)
	uout, _ := NewIndexBuffers(4, 16)
	for x, data := 0, uin.Bytes(); x < len(data); x++ {
		data[x] = byte(x*5 + 2)
	}
	if err := uni.Bind(uin, uout); err != nil {
		t.Fatal(err)
	}

	l, err := NewConcatLayout([]int{12, 0, 5, 33})
	if err != nil {
		t.Fatal(err)
	}
	rag, err := m.CompileConcatV(l, OnGroup(gR))
	if err != nil {
		t.Fatal(err)
	}
	rin, err := NewRaggedBuffers(l)
	if err != nil {
		t.Fatal(err)
	}
	rout, err := NewRaggedBuffers(rag.OutLayout())
	if err != nil {
		t.Fatal(err)
	}
	for x, data := 0, rin.Bytes(); x < len(data); x++ {
		data[x] = byte(x*9 + 4)
	}
	if err := rag.BindV(rin, rout); err != nil {
		t.Fatal(err)
	}

	reports, err := m.RunPlans([]*Plan{uni, rag})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !bytes.Equal(uout.Block(i, j), uin.Block(j, i)) {
				t.Fatalf("uniform plan: out.Block(%d,%d) wrong", i, j)
			}
			if !bytes.Equal(rout.Block(i, j), rin.Block(j, 0)) {
				t.Fatalf("ragged plan: out.Block(%d,%d) wrong", i, j)
			}
		}
	}
	if reports[1].C2LowerBound != lowerbound.ConcatVVolume([]int{12, 0, 5, 33}, 1) {
		t.Errorf("ragged report lower bound %d wrong", reports[1].C2LowerBound)
	}
}

// TestIndexVShapeErrors pins the user-facing validation.
func TestIndexVShapeErrors(t *testing.T) {
	m := MustNewMachine(4)
	if _, _, err := m.IndexV([][][]byte{{{1}}, {{1}}}); err == nil {
		t.Error("IndexV accepted a 2x1 matrix on a 4-processor world")
	}
	if _, err := m.IndexVFlat(nil, nil); err == nil {
		t.Error("IndexVFlat accepted nil buffers")
	}
	l, _ := NewIndexLayout([][]int{{1, 2}, {3, 4}})
	in, _ := NewRaggedBuffers(l)
	badOut, _ := NewRaggedBuffers(l) // not the transpose
	g, _ := m.NewGroup([]int{0, 1})
	if _, err := m.IndexVFlat(in, badOut, OnGroup(g)); err == nil {
		t.Error("IndexVFlat accepted a non-transposed output layout")
	}
	if _, _, err := m.ConcatV([][]byte{{1}, {2, 3}}, WithConcatAlgorithm(ConcatFolklore)); err == nil {
		t.Error("ConcatV accepted the folklore baseline on a ragged layout")
	}
}

// TestIndexVFlatSteadyStateAllocs pins the uniform fast path to its
// pre-refactor allocation numbers (measured 125 allocs/op for IndexFlat
// and 124 for ConcatFlat at this configuration before the Layout
// refactor; small headroom absorbs scheduler jitter) and bounds the
// ragged steady state relative to the uniform one.
func TestIndexVFlatSteadyStateAllocs(t *testing.T) {
	const n, blockLen, runs = 16, 128, 10
	m := MustNewMachine(n)

	fin, _ := NewIndexBuffers(n, blockLen)
	fout, _ := NewIndexBuffers(n, blockLen)
	var opErr error
	m.IndexFlat(fin, fout, WithRadix(2)) // warm pools and plan cache
	flat := testing.AllocsPerRun(runs, func() {
		if _, err := m.IndexFlat(fin, fout, WithRadix(2)); err != nil {
			opErr = err
		}
	})
	if opErr != nil {
		t.Fatal(opErr)
	}
	if flat > 130 {
		t.Errorf("uniform IndexFlat fast path allocates %.0f/op, pre-refactor pin is 125 (+ headroom 130)", flat)
	}

	cin, _ := NewConcatBuffers(n, blockLen)
	cout, _ := NewIndexBuffers(n, blockLen)
	m.ConcatFlat(cin, cout)
	cflat := testing.AllocsPerRun(runs, func() {
		if _, err := m.ConcatFlat(cin, cout); err != nil {
			opErr = err
		}
	})
	if opErr != nil {
		t.Fatal(opErr)
	}
	if cflat > 129 {
		t.Errorf("uniform ConcatFlat fast path allocates %.0f/op, pre-refactor pin is 124 (+ headroom 129)", cflat)
	}

	// The ragged steady state reuses the same pooled machinery; allow a
	// 25%% margin over the uniform path for the layout bookkeeping.
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
		for j := range counts[i] {
			counts[i][j] = 1 + (i*7+j*3)%blockLen
		}
	}
	l, err := NewIndexLayout(counts)
	if err != nil {
		t.Fatal(err)
	}
	vin, _ := NewRaggedBuffers(l)
	vout, _ := NewRaggedBuffers(l.Transpose())
	m.IndexVFlat(vin, vout, WithRadix(2))
	ragged := testing.AllocsPerRun(runs, func() {
		if _, err := m.IndexVFlat(vin, vout, WithRadix(2)); err != nil {
			opErr = err
		}
	})
	if opErr != nil {
		t.Fatal(opErr)
	}
	if ragged > flat*5/4+5 {
		t.Errorf("ragged IndexVFlat steady state allocates %.0f/op, uniform is %.0f/op; want within 25%%", ragged, flat)
	}
}

// TestIndexVPlanReuseAcrossCalls checks the layout-digest cache: two
// calls with equal layouts must not recompile (observable through the
// plan pointer identity of CompileIndexV).
func TestIndexVPlanReuseAcrossCalls(t *testing.T) {
	m := MustNewMachine(6)
	counts := [][]int{
		{1, 2, 3, 4, 5, 6},
		{6, 5, 4, 3, 2, 1},
		{1, 1, 2, 2, 3, 3},
		{0, 9, 0, 9, 0, 9},
		{2, 4, 6, 8, 10, 12},
		{1, 3, 5, 7, 9, 11},
	}
	l1, _ := NewIndexLayout(counts)
	l2, _ := NewIndexLayout(counts)
	p1, err := m.CompileIndexV(l1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.CompileIndexV(l2)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("equal layouts recompiled instead of hitting the cache")
	}
	if p1.Layout() == nil || p1.OutLayout() == nil {
		t.Error("layout plan does not expose its layouts")
	}
	if fmt.Sprint(p1.Op()) != "index" {
		t.Errorf("plan op %q, want index", p1.Op())
	}
}
