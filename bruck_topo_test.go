package bruck

// Public-API coverage of the two-level topology surface: WithTopology
// machines, forced Hierarchical() schedules, the topology-aware
// WithAuto dispatch with its memoized verdict, per-level Reports and
// the topology-priced critical path.

import (
	"bytes"
	"strings"
	"testing"
)

// topo4x4 is the canonical 10:1 test machine: four nodes of four
// processors, intra links at SP1, inter links ten times slower.
func topo4x4(t *testing.T) *Topology {
	t.Helper()
	topo, err := ParseTopology("4x4")
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestTopologyMachineHierIndex(t *testing.T) {
	topo := topo4x4(t)
	m := MustNewMachine(16, WithTopology(topo))
	if m.Topology() != topo {
		t.Fatal("Topology() should return the attached topology")
	}
	in := indexInput(16, 8)
	out, rep, err := m.Index(in, Hierarchical())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if !bytes.Equal(out[i][j], in[j][i]) {
				t.Fatalf("out[%d][%d] != in[%d][%d]", i, j, j, i)
			}
		}
	}
	if rep.Intra == nil || rep.Inter == nil {
		t.Fatal("hierarchical Report must carry the per-level split")
	}
	if rep.Intra.C1+rep.Inter.C1 != rep.C1 {
		t.Errorf("level C1 split %d+%d != total %d", rep.Intra.C1, rep.Inter.C1, rep.C1)
	}
	if rep.Intra.C2+rep.Inter.C2 != rep.C2 {
		t.Errorf("level C2 split %d+%d != total %d", rep.Intra.C2, rep.Inter.C2, rep.C2)
	}
	if rep.TimeTopo(topo) <= 0 {
		t.Error("topology-priced time must be positive")
	}
}

func TestTopologyMachineHierConcat(t *testing.T) {
	topo := topo4x4(t)
	m := MustNewMachine(16, WithTopology(topo))
	in := make([][]byte, 16)
	for i := range in {
		in[i] = []byte{byte(i), byte(i * 3), byte(255 - i)}
	}
	out, rep, err := m.Concat(in, Hierarchical())
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		for j := range out[i] {
			if !bytes.Equal(out[i][j], in[j]) {
				t.Fatalf("out[%d][%d] wrong", i, j)
			}
		}
	}
	if rep.Intra == nil || rep.Inter == nil {
		t.Fatal("hierarchical Report must carry the per-level split")
	}
}

func TestTopologyMachineHierAllReduce(t *testing.T) {
	topo := topo4x4(t)
	m := MustNewMachine(16, WithTopology(topo))
	n, b := 16, 8
	in, _ := NewIndexBuffers(n, b)
	out, _ := NewIndexBuffers(n, b)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			PutInt32s(in.Block(i, j), []int32{int32(i*31 + j), int32(i - 2*j)})
		}
	}
	rep, err := m.AllReduceFlat(in, out, WithKernel(ReduceSum, Int32), Hierarchical())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		var s0, s1 int32
		for p := 0; p < n; p++ {
			s0 += int32(p*31 + j)
			s1 += int32(p - 2*j)
		}
		for i := 0; i < n; i++ {
			got := Int32s(out.Block(i, j))
			if got[0] != s0 || got[1] != s1 {
				t.Fatalf("rank %d chunk %d: got (%d,%d), want (%d,%d)", i, j, got[0], got[1], s0, s1)
			}
		}
	}
	if rep.Intra == nil || rep.Inter == nil {
		t.Fatal("hierarchical Report must carry the per-level split")
	}
}

func TestTopologyAutoPicksHierarchicalAndMemoizes(t *testing.T) {
	topo := topo4x4(t)
	m := MustNewMachine(16, WithTopology(topo))

	// Latency-dominated shape: on a 10:1 machine the hierarchical
	// schedule's cheap intra rounds beat any flat schedule, whose every
	// round pays the inter profile.
	pl, err := m.CompileIndex(1, WithAuto(SP1))
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Hierarchical() {
		t.Fatal("auto dispatch on a 10:1 4x4 machine should pick the hierarchical index")
	}
	for _, r := range []int{2, 4, 16} {
		flat, err := m.CompileIndex(1, WithRadix(r))
		if err != nil {
			t.Fatal(err)
		}
		if pl.TimeTopo(topo) >= flat.TimeTopo(topo) {
			t.Errorf("hier time %g should beat flat radix-%d time %g",
				pl.TimeTopo(topo), r, flat.TimeTopo(topo))
		}
	}
	again, err := m.CompileIndex(1, WithAuto(SP1))
	if err != nil {
		t.Fatal(err)
	}
	if again != pl {
		t.Error("repeated auto call should hit the memoized verdict")
	}

	cpl, err := m.CompileConcat(1, WithAuto(SP1))
	if err != nil {
		t.Fatal(err)
	}
	if !cpl.Hierarchical() {
		t.Fatal("auto dispatch on a 10:1 4x4 machine should pick the hierarchical concatenation")
	}
	if again, err := m.CompileConcat(1, WithAuto(SP1)); err != nil || again != cpl {
		t.Errorf("repeated concat auto call should hit the memoized verdict (err %v)", err)
	}

	// The reduction dispatch must return the modeled winner and memoize
	// it; whether that winner is hierarchical depends on the vector
	// size, so assert optimality against the hierarchical candidate
	// rather than a fixed shape.
	rpl, err := m.CompileReduce(AllReduceKind, 4, WithAuto(SP1), WithKernel(ReduceSum, Int32))
	if err != nil {
		t.Fatal(err)
	}
	hier, err := m.CompileReduce(AllReduceKind, 4, WithKernel(ReduceSum, Int32), Hierarchical())
	if err != nil {
		t.Fatal(err)
	}
	if rpl.TimeTopo(topo) > hier.TimeTopo(topo) {
		t.Errorf("auto winner time %g must not lose to the hierarchical candidate %g",
			rpl.TimeTopo(topo), hier.TimeTopo(topo))
	}
	if again, err := m.CompileReduce(AllReduceKind, 4, WithAuto(SP1), WithKernel(ReduceSum, Int32)); err != nil || again != rpl {
		t.Errorf("repeated reduce auto call should hit the memoized verdict (err %v)", err)
	}
}

func TestTopologyAutoExecutesCorrectly(t *testing.T) {
	topo := topo4x4(t)
	m := MustNewMachine(16, WithTopology(topo))
	in := indexInput(16, 1)
	out, rep, err := m.Index(in, WithAuto(SP1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if !bytes.Equal(out[i][j], in[j][i]) {
				t.Fatalf("out[%d][%d] != in[%d][%d]", i, j, j, i)
			}
		}
	}
	if rep.Intra == nil {
		t.Error("the auto winner here is hierarchical, so the Report must split per level")
	}
}

func TestTopologyValidation(t *testing.T) {
	topo := topo4x4(t)
	if _, err := NewMachine(8, WithTopology(topo)); err == nil {
		t.Error("topology for 16 processors on an 8-processor machine must be rejected")
	}
	m := MustNewMachine(16)
	if _, err := m.CompileIndex(4, Hierarchical()); err == nil ||
		!strings.Contains(err.Error(), "WithTopology") {
		t.Errorf("Hierarchical without WithTopology should fail clearly, got %v", err)
	}
	mt := MustNewMachine(16, WithTopology(topo))
	if _, err := mt.CompileReduce(ReduceScatterKind, 4, WithKernel(ReduceSum, Int32), Hierarchical()); err == nil {
		t.Error("hierarchical reduce-scatter is unsupported and must error")
	}
}

func TestTopologyCriticalPath(t *testing.T) {
	topo := topo4x4(t)
	m := MustNewMachine(16, WithTopology(topo), RecordEvents())
	in := indexInput(16, 4)
	if _, _, err := m.Index(in, Hierarchical()); err != nil {
		t.Fatal(err)
	}
	ct, err := m.CriticalPathTopoTime()
	if err != nil {
		t.Fatal(err)
	}
	if ct <= 0 {
		t.Fatal("topology critical path must be positive")
	}
	// Pricing the same events with every link at the inter profile must
	// not be cheaper: the topology clock runs the intra phases faster.
	flat, err := m.CriticalPathTime(ScaledProfile(SP1, DefaultInterRatio))
	if err != nil {
		t.Fatal(err)
	}
	if ct > flat {
		t.Errorf("topology critical path %g should not exceed all-inter pricing %g", ct, flat)
	}

	flatOnly := MustNewMachine(16)
	if _, err := flatOnly.CriticalPathTopoTime(); err == nil {
		t.Error("CriticalPathTopoTime without WithTopology must error")
	}
}
