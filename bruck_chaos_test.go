package bruck

// Cross-backend chaos equivalence: the chaos transport perturbs only
// timing, so every collective — across all five schedule families —
// must produce byte-identical results and identical (C1, C2) under
// chaos(chan) and chaos(slot) as on the plain chan backend, for every
// shape and seed. This is the acceptance test of the chaos wrapper.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"bruck/internal/intmath"
)

// chaosSweepConfigs returns the chaos configurations the equivalence
// sweep runs against the chan baseline: both inner backends, distinct
// seeds, stragglers at rank 0 and the middle rank. MaxDelay is kept
// small so the full sweep stays fast; the jitter path is identical at
// any ceiling.
func chaosSweepConfigs(n int) []ChaosConfig {
	var stragglers []int
	if n > 1 {
		stragglers = []int{0, n / 2}
	}
	return []ChaosConfig{
		{Inner: BackendChan, Seed: 1, MaxDelay: 20 * time.Microsecond, Stragglers: stragglers},
		{Inner: BackendSlot, Seed: 0xbad5eed, MaxDelay: 20 * time.Microsecond, Stragglers: stragglers},
	}
}

// raggedIndexInput builds a deterministic skewed n x n ragged matrix.
func chaosRaggedInput(n, maxLen int) [][][]byte {
	in := make([][][]byte, n)
	for i := range in {
		in[i] = make([][]byte, n)
		for j := range in[i] {
			blk := make([]byte, (i*7+j*3+i*j)%(maxLen+1))
			for x := range blk {
				blk[x] = byte(i*131 + j*31 + x*7)
			}
			in[i][j] = blk
		}
	}
	return in
}

// chaosOps enumerates the five schedule families of the sweep. Each
// returns the operation's output as a block matrix plus its Report,
// executed on a fresh machine with the given options.
var chaosOps = []struct {
	name string
	run  func(t *testing.T, n, k int, mopts []MachineOption) ([][][]byte, *Report)
}{
	{"IndexFlat", func(t *testing.T, n, k int, mopts []MachineOption) ([][][]byte, *Report) {
		m := MustNewMachine(n, append([]MachineOption{Ports(k)}, mopts...)...)
		fin := flatIndexInput(t, n, 3)
		fout := mustIndexBuffers(t, n, 3)
		rep, err := m.IndexFlat(fin, fout)
		if err != nil {
			t.Fatalf("IndexFlat: %v", err)
		}
		return fout.ToMatrix(), rep
	}},
	{"ConcatFlat", func(t *testing.T, n, k int, mopts []MachineOption) ([][][]byte, *Report) {
		m := MustNewMachine(n, append([]MachineOption{Ports(k)}, mopts...)...)
		fin := flatConcatInput(t, n, 3)
		fout := mustIndexBuffers(t, n, 3)
		rep, err := m.ConcatFlat(fin, fout)
		if err != nil {
			t.Fatalf("ConcatFlat: %v", err)
		}
		return fout.ToMatrix(), rep
	}},
	{"IndexV", func(t *testing.T, n, k int, mopts []MachineOption) ([][][]byte, *Report) {
		m := MustNewMachine(n, append([]MachineOption{Ports(k)}, mopts...)...)
		out, rep, err := m.IndexV(chaosRaggedInput(n, 4))
		if err != nil {
			t.Fatalf("IndexV: %v", err)
		}
		return out, rep
	}},
	{"ConcatV", func(t *testing.T, n, k int, mopts []MachineOption) ([][][]byte, *Report) {
		m := MustNewMachine(n, append([]MachineOption{Ports(k)}, mopts...)...)
		in := make([][]byte, n)
		for i := range in {
			in[i] = make([]byte, (i*5+3)%7)
			for x := range in[i] {
				in[i][x] = byte(i*131 + x*7)
			}
		}
		out, rep, err := m.ConcatV(in)
		if err != nil {
			t.Fatalf("ConcatV: %v", err)
		}
		return out, rep
	}},
	{"AllReduce", func(t *testing.T, n, k int, mopts []MachineOption) ([][][]byte, *Report) {
		m := MustNewMachine(n, append([]MachineOption{Ports(k)}, mopts...)...)
		in := make([][][]byte, n)
		for i := range in {
			in[i] = make([][]byte, n)
			for j := range in[i] {
				blk := make([]byte, 4)
				for x := range blk {
					blk[x] = byte(i*131 + j*31 + x*7)
				}
				in[i][j] = blk
			}
		}
		out, rep, err := m.AllReduce(in, WithKernel(ReduceSum, Int32))
		if err != nil {
			t.Fatalf("AllReduce: %v", err)
		}
		return out, rep
	}},
}

// TestChaosEquivalenceSweep: every schedule family, n = 1..16,
// k = 1..3, both chaos inners — byte-identical outputs and identical
// (C1, C2) against the plain chan baseline.
func TestChaosEquivalenceSweep(t *testing.T) {
	for _, op := range chaosOps {
		op := op
		t.Run(op.name, func(t *testing.T) {
			for n := 1; n <= 16; n++ {
				for _, k := range []int{1, 2, 3} {
					if k > intmath.Max(1, n-1) {
						continue
					}
					t.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(t *testing.T) {
						base, baseRep := op.run(t, n, k, nil)
						for _, cfg := range chaosSweepConfigs(n) {
							got, gotRep := op.run(t, n, k, []MachineOption{WithChaos(cfg)})
							if gotRep.C1 != baseRep.C1 || gotRep.C2 != baseRep.C2 {
								t.Fatalf("chaos(%s): (C1=%d, C2=%d), chan (C1=%d, C2=%d)",
									cfg.Inner, gotRep.C1, gotRep.C2, baseRep.C1, baseRep.C2)
							}
							if len(got) != len(base) {
								t.Fatalf("chaos(%s): %d procs, chan %d", cfg.Inner, len(got), len(base))
							}
							for i := range base {
								for j := range base[i] {
									if !bytes.Equal(got[i][j], base[i][j]) {
										t.Fatalf("chaos(%s): out[%d][%d] = %v, chan %v",
											cfg.Inner, i, j, got[i][j], base[i][j])
									}
								}
							}
						}
					})
				}
			}
		})
	}
}

// TestChaosMachineBasics: the public surface — ParseBackend accepts
// "chaos", Transport reports it, WithTransport selects the defaults,
// and a chaos machine's repeated operations stay correct (plan cache
// and transport reuse under jitter).
func TestChaosMachineBasics(t *testing.T) {
	b, err := ParseBackend("chaos")
	if err != nil || b != BackendChaos {
		t.Fatalf("ParseBackend(chaos) = %v, %v", b, err)
	}
	m := MustNewMachine(6, Ports(2), WithTransport(BackendChaos))
	if m.Transport() != BackendChaos {
		t.Fatalf("Transport() = %q", m.Transport())
	}
	fin := flatIndexInput(t, 6, 3)
	want := mustIndexBuffers(t, 6, 3)
	if _, err := m.IndexFlat(fin, want); err != nil {
		t.Fatalf("IndexFlat: %v", err)
	}
	for rep := 0; rep < 3; rep++ {
		out := mustIndexBuffers(t, 6, 3)
		if _, err := m.IndexFlat(fin, out); err != nil {
			t.Fatalf("IndexFlat rep %d: %v", rep, err)
		}
		if !out.Equal(want) {
			t.Fatalf("rep %d: repeated chaos execution changed the result", rep)
		}
	}
}

// TestChaosMachineRejectsBadConfig: configuration validation surfaces
// through NewMachine.
func TestChaosMachineRejectsBadConfig(t *testing.T) {
	if _, err := NewMachine(4, WithChaos(ChaosConfig{Inner: BackendChaos})); err == nil {
		t.Error("chaos-in-chaos accepted")
	}
	if _, err := NewMachine(4, WithChaos(ChaosConfig{Stragglers: []int{7}})); err == nil {
		t.Error("out-of-range straggler accepted")
	}
}
