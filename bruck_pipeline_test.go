package bruck

// Machine-level pipelining tests: WithSegments flows through the public
// option surface into byte-identical results, the option is inert where
// pipelining does not apply (concat, baselines), and the pooled-slab
// executor keeps the segmented allocation profile within 25% of the
// monolithic one — the flat-allocs acceptance bound of the pipeline
// work.

import (
	"testing"

	"bruck/internal/buffers"
)

// TestMachineSegmentedIndexMatchesMonolithic drives WithSegments
// through the Machine front door on every transport and checks the
// segmented output against the monolithic one.
func TestMachineSegmentedIndexMatchesMonolithic(t *testing.T) {
	const n, k, b = 12, 2, 9
	for name, m := range asyncMachines(t, n, k) {
		in := NewBuffersOrDie(t, n, n, b)
		fillIndexInput(in, 4)
		want := NewBuffersOrDie(t, n, n, b)
		if _, err := m.IndexFlat(in, want, WithRadix(2)); err != nil {
			t.Fatalf("%s: monolithic: %v", name, err)
		}
		for _, s := range []int{2, 4, 7, AutoSegments} {
			out := NewBuffersOrDie(t, n, n, b)
			rep, err := m.IndexFlat(in, out, WithRadix(2), WithSegments(s))
			if err != nil {
				t.Fatalf("%s s=%d: %v", name, s, err)
			}
			if !out.Equal(want) {
				t.Errorf("%s s=%d: segmented output differs", name, s)
			}
			if rep.C2 > 0 && s == 4 && rep.C2 >= wantC2(t, m, in) {
				t.Errorf("%s s=%d: pipelined C2 = %d did not drop below monolithic %d",
					name, s, rep.C2, wantC2(t, m, in))
			}
		}
	}
}

// wantC2 reports the monolithic index C2 for the machine's shape.
func wantC2(t *testing.T, m *Machine, in *Buffers) int {
	t.Helper()
	out := NewBuffersOrDie(t, in.Procs(), in.Blocks(), in.BlockLen())
	rep, err := m.IndexFlat(in, out, WithRadix(2))
	if err != nil {
		t.Fatal(err)
	}
	return rep.C2
}

// TestWithSegmentsInertWhereUnsupported: the option must be a no-op —
// not an error — on collectives and algorithms that always run
// monolithic (concat, direct index, ring reductions).
func TestWithSegmentsInertWhereUnsupported(t *testing.T) {
	const n, b = 8, 8
	m := MustNewMachine(n)
	cin := NewBuffersOrDie(t, n, 1, b)
	for i := 0; i < n; i++ {
		for x := 0; x < b; x++ {
			cin.Block(i, 0)[x] = byte(i*13 + x)
		}
	}
	want := NewBuffersOrDie(t, n, n, b)
	if _, err := m.ConcatFlat(cin, want); err != nil {
		t.Fatal(err)
	}
	got := NewBuffersOrDie(t, n, n, b)
	if _, err := m.ConcatFlat(cin, got, WithSegments(4)); err != nil {
		t.Fatalf("concat with WithSegments: %v", err)
	}
	if !got.Equal(want) {
		t.Error("WithSegments changed concat output")
	}

	iin := NewBuffersOrDie(t, n, n, b)
	fillIndexInput(iin, 6)
	iwant := NewBuffersOrDie(t, n, n, b)
	if _, err := m.IndexFlat(iin, iwant, WithIndexAlgorithm(IndexDirect)); err != nil {
		t.Fatal(err)
	}
	iout := NewBuffersOrDie(t, n, n, b)
	rep, err := m.IndexFlat(iin, iout, WithIndexAlgorithm(IndexDirect), WithSegments(4))
	if err != nil {
		t.Fatalf("direct index with WithSegments: %v", err)
	}
	if !iout.Equal(iwant) {
		t.Error("WithSegments changed direct-index output")
	}
	if _, err := m.ReduceScatterFlat(iin, NewBuffersOrDie(t, n, 1, b),
		WithKernel(ReduceSum, Int32), WithReduceAlgorithm(ReduceRing), WithSegments(4)); err != nil {
		t.Fatalf("ring reduce-scatter with WithSegments: %v", err)
	}
	_ = rep
}

// TestPipelinedIndexAllocsFlat pins the pooled-slab property: the
// segmented executor must allocate within 25% of the monolithic one per
// operation in steady state (the pipelined path acquires its payload
// slabs from the engine pool, not the heap).
func TestPipelinedIndexAllocsFlat(t *testing.T) {
	const n, blockLen, runs = 16, 4096, 10
	m := MustNewMachine(n)
	fin, err := buffers.FromMatrix(benchIndexInput(n, blockLen))
	if err != nil {
		t.Fatal(err)
	}
	fout := NewBuffersOrDie(t, n, n, blockLen)
	var opErr error
	run := func(opts ...CollectiveOption) float64 {
		opts = append(opts, WithRadix(2))
		// Warm the plan cache so compilation stays out of the counts.
		if _, err := m.IndexFlat(fin, fout, opts...); err != nil {
			opErr = err
		}
		return testing.AllocsPerRun(runs, func() {
			if _, err := m.IndexFlat(fin, fout, opts...); err != nil {
				opErr = err
			}
		})
	}
	mono := run()
	seg := run(WithSegments(4))
	if opErr != nil {
		t.Fatal(opErr)
	}
	if seg > mono*1.25 {
		t.Errorf("segmented index allocates %.0f/op, monolithic %.0f/op; want within 25%%", seg, mono)
	}
}
